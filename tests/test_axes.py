"""Per-axis correctness of the window-arithmetic kernels.

Three layers of checking, per axis:

* **producer contract** — every ``ll_*`` array kernel must return rows
  sorted on ``(pre, iter)``, duplicate free, and per-iteration membership
  must equal both the naive O(|context|·|doc|) oracle and the
  per-iteration plain staircase join (the Figure 12 fallback);
* **pushdown equivalence** — the name-index variants must be
  bit-identical to post-filtering the plain kernel;
* **whole queries** — one query per axis (plus attribute-context and
  reverse-positional shapes) must serialize identically across engine
  configurations (vectorized, iterative fallback, pushdown off, fusion
  on/off, codegen on/off, untyped columns) and against the tree-walking
  baseline interpreter, and the explain trace must show the default
  configuration never takes the iterative fallback.
"""

from __future__ import annotations

import random

import pytest

from repro import EngineOptions, MonetXQuery
from repro.baselines.interpreter import run_baseline
from repro.relational.explain import capture
from repro.staircase import (Axis, NodeTest, iterative_step, naive_axis,
                             loop_lifted_step_arrays,
                             loop_lifted_step_pushdown)
from repro.xmark import generate_document
from repro.xml import DocumentStore, shred_document
from repro.xml.serializer import serialize_sequence

from conftest import SMALL_XML


AXES = [Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.SELF,
        Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF, Axis.FOLLOWING,
        Axis.PRECEDING, Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING]
PUSHDOWN_AXES = [Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                 Axis.FOLLOWING, Axis.PRECEDING, Axis.FOLLOWING_SIBLING,
                 Axis.PRECEDING_SIBLING]

AXIS_IDS = [axis.value for axis in AXES]
PUSHDOWN_IDS = [axis.value for axis in PUSHDOWN_AXES]


@pytest.fixture(scope="module")
def documents():
    store = DocumentStore()
    return [
        shred_document(SMALL_XML, "small.xml", store),
        shred_document(generate_document(scale=0.0012, seed=11),
                       "xmark.xml", store),
    ]


def sampled_contexts(container, rng, samples=4):
    """A few multi-iteration contexts, sorted ``[pre, iter]`` dup-free."""
    count = container.node_count
    contexts = [
        [(0, 1)],
        sorted({(pre, 1) for pre in rng.sample(range(count),
                                               min(8, count))}),
    ]
    for _ in range(samples):
        pairs = {(rng.randrange(count), rng.randint(1, 4))
                 for _ in range(rng.randint(2, 12))}
        contexts.append(sorted(pairs))
    return contexts


# --------------------------------------------------------------------------- #
# layer 1: the shared producer contract
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("axis", AXES, ids=AXIS_IDS)
def test_producer_contract_and_membership_oracle(axis, documents):
    rng = random.Random(52601 + hash(axis.value) % 1000)
    for container in documents:
        for context in sampled_contexts(container, rng):
            iters, pres = loop_lifted_step_arrays(container, context, axis)
            rows = list(zip(pres, iters))
            # contract: sorted (pre, iter), duplicate free
            assert rows == sorted(rows), (axis, context)
            assert len(rows) == len(set(rows)), (axis, context)
            # membership: per iteration, exactly the naive oracle set
            by_iteration: dict[int, list[int]] = {}
            for pre, iteration in context:
                by_iteration.setdefault(iteration, []).append(pre)
            produced: dict[int, list[int]] = {}
            for iteration, pre in zip(iters, pres):
                produced.setdefault(iteration, []).append(pre)
            for iteration, nodes in by_iteration.items():
                expected = naive_axis(container, nodes, axis)
                assert sorted(produced.get(iteration, [])) == expected, (
                    axis, iteration, nodes)
            # and the per-iteration staircase join fallback agrees
            fallback = sorted((pre, iteration) for iteration, pre
                              in iterative_step(container, context, axis))
            assert rows == fallback, (axis, context)


@pytest.mark.parametrize("axis", PUSHDOWN_AXES, ids=PUSHDOWN_IDS)
def test_pushdown_bit_identical_to_post_filter(axis, documents):
    rng = random.Random(20260808)
    names = ["person", "name", "item", "bidder", "text", "keyword"]
    for container in documents:
        for context in sampled_contexts(container, rng, samples=3):
            for name in names:
                node_test = NodeTest(kind="element", name=name)
                pushed = loop_lifted_step_pushdown(container, context, axis,
                                                   node_test)
                if pushed is None:          # name absent from this document
                    continue
                iters, pres = loop_lifted_step_arrays(container, context,
                                                      axis, node_test)
                assert pushed == list(zip(iters, pres)), (axis, name)


def test_pushdown_stays_off_for_context_bounded_axes(documents):
    """self/parent/ancestor results are bounded by the context (times
    depth) already — the dispatcher keeps them on the post-filter path."""
    container = documents[0]
    node_test = NodeTest(kind="element", name="person")
    for axis in (Axis.SELF, Axis.PARENT, Axis.ANCESTOR,
                 Axis.ANCESTOR_OR_SELF):
        assert loop_lifted_step_pushdown(container, [(0, 1)], axis,
                                         node_test) is None


# --------------------------------------------------------------------------- #
# layer 2: whole queries across engine configurations vs. the baseline
# --------------------------------------------------------------------------- #
AXIS_QUERIES = [
    # one per axis
    "//person/self::person",
    "//name/self::*",
    "//name/parent::person",
    "//interest/ancestor::person",
    "//interest/ancestor-or-self::node()",
    "//bidder/following::itemref",
    "//current/preceding::bidder",
    "//initial/following-sibling::*",
    "//reserve/preceding-sibling::bidder",
    "//open_auction/child::initial",
    "//person/descendant::interest",
    "//profile/descendant-or-self::node()",
    # reverse-axis positional predicates count in proximity order
    "//increase/ancestor::*[1]",
    "//interest/ancestor::*[2]",
    "//interest/ancestor::*[last()]",
    "//price/preceding::itemref[1]",
    "//reserve/preceding-sibling::*[1]",
    "//current/preceding-sibling::*[last()]",
    "//name/following-sibling::*[1]",
    # attribute context nodes route through the owning element
    "//profile/@income/ancestor::person",
    "//profile/@income/ancestor-or-self::node()",
    "//itemref/@item/parent::*",
    "//itemref/@item/following::name",
    "//interest/@category/preceding::name",
    "//buyer/@person/self::node()",
    # loop-lifted shapes: many iterations at once
    "for $b in //bidder return count($b/following-sibling::bidder)",
    "for $n in //name return count($n/ancestor::*)",
    "for $i in //itemref return $i/preceding-sibling::*[1]",
]

CONFIGURATIONS = [
    ("default", EngineOptions()),
    ("iterative-other", EngineOptions(loop_lifted_other=False)),
    ("no-pushdown", EngineOptions(nametest_pushdown=False)),
    ("no-fusion", EngineOptions(step_fusion=False)),
    ("no-codegen", EngineOptions(codegen=False)),
    ("untyped", EngineOptions(typed_columns=False)),
    ("naive-steps", EngineOptions(loop_lifted_child=False,
                                  loop_lifted_descendant=False,
                                  loop_lifted_other=False,
                                  nametest_pushdown=False,
                                  step_fusion=False, codegen=False)),
]


@pytest.fixture(scope="module")
def axis_engine() -> MonetXQuery:
    engine = MonetXQuery()
    engine.load_document_text(SMALL_XML, name="auction.xml")
    return engine


@pytest.fixture(scope="module")
def axis_baseline(axis_engine) -> dict[str, str]:
    return {query: serialize_sequence(
                run_baseline(axis_engine.store, query, "auction.xml"))
            for query in AXIS_QUERIES}


@pytest.mark.parametrize("config_name,options", CONFIGURATIONS,
                         ids=[name for name, _ in CONFIGURATIONS])
def test_axis_queries_bit_identical_to_baseline(axis_engine, axis_baseline,
                                                config_name, options):
    for query in AXIS_QUERIES:
        result = axis_engine.query(query, options=options)
        assert result.serialize() == axis_baseline[query], (
            f"configuration {config_name!r} diverged on:\n{query}")


def test_default_configuration_never_takes_the_iterative_fallback():
    """Every axis executes vectorized under the defaults: the explain trace
    must never record a per-iteration (``step.iterative``) dispatch."""
    for query in AXIS_QUERIES:
        engine = MonetXQuery()
        engine.load_document_text(SMALL_XML, name="auction.xml")
        with capture() as trace:
            engine.query(query)
        assert trace.count("step.iterative") == 0, query


def test_window_axes_use_the_name_index():
    """Name-tested following/preceding/sibling steps take the pushdown
    (candidate bisection) path, not the scan-then-filter path."""
    for query in ("//bidder/following::itemref",
                  "//current/preceding::bidder",
                  "//reserve/preceding-sibling::bidder"):
        engine = MonetXQuery()
        engine.load_document_text(SMALL_XML, name="auction.xml")
        with capture() as trace:
            engine.query(query)
        assert trace.count("step.pushdown") >= 1, query


# --------------------------------------------------------------------------- #
# layer 3: pinned semantics (proximity positions, attribute context)
# --------------------------------------------------------------------------- #
def names_of(result) -> list[str]:
    return [item.name() for item in result.items]


def test_reverse_positional_one_is_the_nearest_ancestor(axis_engine):
    result = axis_engine.query("//increase/ancestor::*[1]",
                               context="auction.xml")
    assert names_of(result) == ["bidder", "bidder"]


def test_reverse_positional_last_is_the_document_root(axis_engine):
    result = axis_engine.query("//interest/ancestor::*[last()]",
                               context="auction.xml")
    assert names_of(result) == ["site"]


def test_preceding_sibling_one_is_the_nearest_left_sibling(axis_engine):
    result = axis_engine.query("//reserve/preceding-sibling::*[1]",
                               context="auction.xml")
    assert names_of(result) == ["current"]


def test_forward_positional_still_counts_in_document_order(axis_engine):
    result = axis_engine.query(
        "//open_auction[1]/following-sibling::*[1]/@id",
        context="auction.xml")
    assert result.serialize() == 'id="open1"'


def test_attribute_context_ancestor_routes_via_the_owner(axis_engine):
    """The ancestors of an attribute are the owner's ancestor-*or-self*
    chain: the owning ``interest`` elements belong to the result."""
    result = axis_engine.query("//interest/@category/ancestor::*",
                               context="auction.xml")
    assert names_of(result) == ["site", "people", "person", "profile",
                                "interest", "person", "profile", "interest"]


def test_attribute_context_ancestor_or_self_includes_the_attribute(
        axis_engine):
    with_self = axis_engine.query(
        "count(//profile/@income/ancestor-or-self::node())",
        context="auction.xml")
    without_self = axis_engine.query(
        "count(//profile/@income/ancestor::node())", context="auction.xml")
    assert int(with_self.serialize()) == int(without_self.serialize()) + 2


def test_attribute_context_siblings_are_empty(axis_engine):
    for axis in ("following-sibling", "preceding-sibling", "child",
                 "descendant"):
        result = axis_engine.query(f"count(//profile/@income/{axis}::node())",
                                   context="auction.xml")
        assert result.serialize() == "0", axis
