"""Section 6 "Shredding and Serialization" — linear-time load and dump.

The paper reports shredding/serialization times that grow linearly with
document size thanks to the purely sequential access pattern of the
``pre|size|level`` encoding.  The benchmark shreds and serializes generated
XMark documents of increasing size; the recorded nodes/second should stay
roughly constant.
"""

import pytest

from repro.xmark import generate_document
from repro.xml import DocumentStore, serialize_subtree, shred_document

from .conftest import BASE_SCALE


SCALES = (BASE_SCALE, BASE_SCALE * 2, BASE_SCALE * 4)


@pytest.mark.parametrize("scale", SCALES)
def test_shredding_scales_linearly(benchmark, scale):
    text = generate_document(scale, seed=42)

    def run():
        store = DocumentStore()
        return shred_document(text, "auction.xml", store).node_count

    nodes = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["experiment"] = "text-shred"
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["document_bytes"] = len(text)
    benchmark.extra_info["nodes"] = nodes


@pytest.mark.parametrize("scale", SCALES)
def test_serialization_scales_linearly(benchmark, scale):
    text = generate_document(scale, seed=42)
    store = DocumentStore()
    document = shred_document(text, "auction.xml", store)

    def run():
        return len(serialize_subtree(document, 0))

    size = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    benchmark.extra_info["experiment"] = "text-serialize"
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["serialized_bytes"] = size
    benchmark.extra_info["nodes"] = document.node_count
