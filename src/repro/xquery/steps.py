"""Bridging XPath location steps to the staircase-join family.

``axis_step`` receives the relational encoding of the context node sequences
of all iterations (``iter|pos|item`` with node items), converts it into the
``(pre, iter)`` pairs the staircase joins expect, dispatches to

* the **loop-lifted** staircase join (default),
* the **iterative** staircase join (one pass per iteration — the Figure 12
  baseline, selected per axis through the engine options), or
* the **nametest pushdown** variant (candidate lists from the element-name
  index, Section 3.2),

and re-assembles an ``iter|pos|item`` table whose items are node surrogates
in document order per iteration.

The staircase joins deliver their results as paired ``(iter, pre)`` int
arrays; the assembly sorts/dedups on plain integers and boxes a
:class:`~repro.xml.document.NodeRef` only for rows that survive — and with
``need_item=False`` (the required-columns analysis proved every consumer
reads ``iter`` alone, e.g. ``count(path)``) no node surrogate is built at
all: the result table carries a typed ``iter`` column next to constant
``pos``/``item`` stand-ins.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from ..errors import XQueryTypeError
from ..relational.column import Column, IntColumn
from ..relational.properties import TableProps
from ..relational.table import Table
from ..relational import explain
from ..staircase.axes import Axis, NodeTest
from ..staircase.iterative import StaircaseStats
from ..staircase.loop_lifted import (iterative_step_arrays, ll_attribute,
                                     loop_lifted_step_arrays, pairs_to_arrays)
from ..staircase.pushdown import loop_lifted_step_pushdown
from ..xml.document import DocumentContainer, NodeKind, NodeRef
from . import ast


@dataclass
class StepOptions:
    """The ablation switches that govern location-step execution."""

    loop_lifted_child: bool = True
    loop_lifted_descendant: bool = True
    loop_lifted_other: bool = True
    nametest_pushdown: bool = True


def node_test_from_ast(test: "ast.NodeTestExpr") -> NodeTest:
    """Translate an AST node test into a staircase-join node test."""
    name = test.name if test.name not in (None, "*") else None
    return NodeTest(kind=test.kind, name=name)


def _wants_loop_lifted(axis: Axis, options: StepOptions) -> bool:
    if axis is Axis.CHILD:
        return options.loop_lifted_child
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        return options.loop_lifted_descendant
    return options.loop_lifted_other


def axis_step(context: Table, axis: Axis, node_test: NodeTest, *,
              options: StepOptions | None = None,
              stats: StaircaseStats | None = None,
              need_item: bool = True) -> Table:
    """Evaluate one location step for every iteration of the context.

    ``context`` is an ``iter|pos|item`` table whose items are
    :class:`~repro.xml.document.NodeRef` values; non-node items raise a type
    error (XPTY0019).  The result is an ``iter|pos|item`` table with the step
    results per iteration in document order, duplicate free, ``pos``
    renumbered 1..n per iteration.

    ``need_item=False`` applies the dead-``item`` rewrite: callers proved no
    consumer ever reads the node surrogates (only per-iteration
    cardinalities matter), so the per-row ``NodeRef`` boxing is skipped and
    ``item`` is a constant stand-in column.
    """
    if options is None:
        options = StepOptions()

    # split the context per document container; remember attribute owners
    per_container: dict[int, tuple[DocumentContainer, list[tuple[int, int]]]] = {}
    for iteration, item in zip(context.col("iter"), context.col("item")):
        if not isinstance(item, NodeRef):
            raise XQueryTypeError(
                f"path step applied to a non-node item {item!r}")
        container = item.container
        if item.attr is not None:
            # attribute nodes only participate in self / parent steps
            if axis is Axis.PARENT:
                pairs = per_container.setdefault(
                    id(container), (container, []))[1]
                pairs.append((item.pre, iteration))
            elif axis is Axis.SELF and node_test.kind in ("attribute", "node"):
                pairs = per_container.setdefault(
                    id(container), (container, []))[1]
                pairs.append((item.pre, iteration))
            continue
        pairs = per_container.setdefault(id(container), (container, []))[1]
        pairs.append((item.pre, iteration))

    # one (iters, pres/attr-indexes) array pair per container
    produced: list[tuple[DocumentContainer, array, array, bool]] = []
    contexts_in = 0
    for container, pairs in per_container.values():
        pairs = sorted(set(pairs))
        contexts_in += len(pairs)
        if axis is Axis.ATTRIBUTE:
            name = node_test.name if node_test.has_name else None
            iters, attrs = pairs_to_arrays(ll_attribute(container, pairs, name))
            explain.record("step", "step.attribute", len(pairs), len(iters))
            produced.append((container, iters, attrs, True))
            continue

        arrays = None
        if _wants_loop_lifted(axis, options):
            if options.nametest_pushdown:
                pushed = loop_lifted_step_pushdown(container, pairs, axis,
                                                   node_test, stats=stats)
                if pushed is not None:
                    arrays = pairs_to_arrays(pushed)
                    explain.record("step", "step.pushdown", len(pairs),
                                   len(arrays[0]), detail=axis.value)
            if arrays is None:
                arrays = loop_lifted_step_arrays(container, pairs, axis,
                                                 node_test, stats=stats)
                explain.record("step", "step.loop-lifted", len(pairs),
                               len(arrays[0]), detail=axis.value)
        else:
            arrays = iterative_step_arrays(container, pairs, axis, node_test,
                                           stats=stats)
            explain.record("step", "step.iterative", len(pairs),
                           len(arrays[0]), detail=axis.value)
        produced.append((container, arrays[0], arrays[1], False))

    # merge containers in document order per iteration, duplicate free.
    # Rows are compared as plain int tuples — (iter, container order key,
    # owner pre, attr flag, attr index) mirrors NodeRef.order_key() exactly,
    # so the sort/dedup never touches a boxed node surrogate.
    containers = [entry[0] for entry in produced]
    rows: list[tuple[int, int, int, int, int, int]] = []
    for cidx, (container, iters, ranks, is_attr) in enumerate(produced):
        okey = container.order_key
        if is_attr:
            owners = container.attr_owner
            rows.extend((iteration, okey, owners[rank], 1, rank, cidx)
                        for iteration, rank in zip(iters, ranks))
        else:
            rows.extend((iteration, okey, rank, 0, 0, cidx)
                        for iteration, rank in zip(iters, ranks))
    rows.sort()
    deduped: list[tuple[int, int, int, int, int, int]] = []
    previous = None
    for row in rows:
        key = row[:5]
        if previous is not None and key == previous:
            continue
        deduped.append(row)
        previous = key

    iters_out = array("q", (row[0] for row in deduped))

    if not need_item:
        # dead-item rewrite: per-iteration cardinalities survive, node
        # surrogates are never built and — since consumers read iter
        # alone — a constant pos column stands in (no per-row numbering)
        explain.record("step", "step.item-pruned", contexts_in,
                       len(iters_out), detail=axis.value)
        table = Table([IntColumn("iter", iters_out),
                       Column.constant("pos", 1, len(iters_out)),
                       Column.constant("item", None, len(iters_out))],
                      props=TableProps(order=("iter",)))
        return table

    positions = array("q")
    counter = 0
    last_iter: int | None = None
    for iteration in iters_out:
        if iteration != last_iter:
            counter = 0
            last_iter = iteration
        counter += 1
        positions.append(counter)

    items: list[NodeRef] = []
    for _, _, pre, flag, rank, cidx in deduped:
        container = containers[cidx]
        items.append(container.attribute(rank) if flag
                     else NodeRef(container, pre))

    table = Table([IntColumn("iter", iters_out),
                   IntColumn("pos", positions),
                   Column("item", items)],
                  props=TableProps(order=("iter", "pos")))
    return table
