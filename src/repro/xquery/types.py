"""XQuery item typing helpers: atomization, effective boolean value, casts.

The relational encoding stores polymorphic items (numbers, strings, booleans
and node surrogates) in a single ``item`` column.  These helpers implement
the slice of the XQuery data model the XMark workload needs:

* ``atomize`` — nodes become their (untyped-atomic) string value, atomic
  values pass through;
* ``effective_boolean_value`` — the rules of fn:boolean();
* ``to_number`` / ``to_string`` — the casts used by arithmetic, comparisons
  and string functions (untyped atomics are promoted to numbers when the
  other operand is numeric, as in the paper's general-comparison handling).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from ..errors import XQueryTypeError
from ..xml.document import NodeRef


def atomize(item: Any) -> Any:
    """Atomize one item: nodes yield their string value, atomics pass through."""
    if isinstance(item, NodeRef):
        return item.string_value()
    return item


def atomize_sequence(items: Sequence[Any]) -> list[Any]:
    return [atomize(item) for item in items]


def to_number(value: Any) -> float | int | None:
    """Cast a value to a number; returns ``None`` when the cast fails."""
    value = atomize(value)
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return None
        try:
            if any(ch in text for ch in ".eE"):
                return float(text)
            return int(text)
        except ValueError:
            try:
                return float(text)
            except ValueError:
                return None
    return None


def to_string(value: Any) -> str:
    """The fn:string() cast."""
    value = atomize(value)
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def effective_boolean_value(items: Sequence[Any]) -> bool:
    """fn:boolean() over an item sequence."""
    if not items:
        return False
    first = items[0]
    if isinstance(first, NodeRef):
        return True
    if len(items) > 1:
        raise XQueryTypeError(
            "effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return bool(first) and not (isinstance(first, float) and math.isnan(first))
    if isinstance(first, str):
        return len(first) > 0
    return True


def is_node(item: Any) -> bool:
    return isinstance(item, NodeRef)


def document_order_key(item: Any):
    """Sort key by document order (nodes only)."""
    if not isinstance(item, NodeRef):
        raise XQueryTypeError("document order is only defined on nodes")
    return item.order_key()
