"""Positional lookup and positional join algorithms.

One of the paper's architectural lessons (Sections 4.1 and 8) is that lookups
into *dense* integer key columns — SQL autoincrement-style columns such as
``iter``, ``pos``, ``pre``/``rid`` — should not be answered by B-tree access
or hashing but by address computation: record ``k`` of a dense column with
base ``b`` lives at position ``k - b``.  These helpers implement that
"positional lookup" fast path; :mod:`repro.relational.operators` uses them
whenever the key column's ``dense`` property holds.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Sequence

from ..errors import RelationalError
from .table import Table


def positional_positions(key_values: Iterable[Any], base: int,
                         size: int) -> Sequence[int] | None:
    """Translate dense-key values into row positions.

    Returns ``None`` when any probe value is not an integer or falls outside
    the stored range — the caller then falls back to a hash join (this is the
    "join hit rate of 1" assumption of the paper: misses mean the dense-key
    assumption was wrong and the generic algorithm must be used).

    Typed probes take the vectorized path: an ``array('q')`` (or virtual
    ``range``) probe is validated with two C-level ``min``/``max`` calls and
    translated by offset arithmetic — with ``base == 0`` the probe sequence
    *is* the position sequence and no copy is made at all.
    """
    if isinstance(key_values, range):
        if len(key_values) == 0:
            return key_values
        low = min(key_values.start, key_values[-1])
        high = max(key_values.start, key_values[-1])
        if low - base < 0 or high - base >= size:
            return None
        if base == 0:
            return key_values
        return range(key_values.start - base, key_values.stop - base,
                     key_values.step)
    if isinstance(key_values, array) and key_values.typecode == "q":
        if len(key_values) == 0:
            return key_values
        if min(key_values) - base < 0 or max(key_values) - base >= size:
            return None
        if base == 0:
            return key_values
        return array("q", (value - base for value in key_values))
    positions: list[int] = []
    for value in key_values:
        if not isinstance(value, int) or isinstance(value, bool):
            return None
        position = value - base
        if position < 0 or position >= size:
            return None
        positions.append(position)
    return positions


def positional_select(table: Table, key_column: str, value: Any) -> Table:
    """Select rows with ``key_column == value`` by address computation."""
    column = table.column(key_column)
    if not column.props.dense:
        raise RelationalError(
            f"positional_select requires a dense key column, got {key_column!r}")
    if not isinstance(value, int) or isinstance(value, bool):
        return table.take([], keep_order=True)
    position = value - column.props.dense_base
    if position < 0 or position >= len(column):
        return table.take([], keep_order=True)
    return table.take([position], keep_order=True)


def positional_join_positions(probe_values: Sequence[Any], build: Table,
                              build_key: str) -> Sequence[int] | None:
    """Positions into ``build`` for every probe value, or ``None`` on a miss.

    The probe side keeps its order; because every dense key value matches
    exactly one build row, the join hit rate is exactly 1 and the output has
    exactly ``len(probe_values)`` rows in probe order — which is why the
    optimizer need not consider join-order permutations for these joins.
    """
    key_column = build.column(build_key)
    if not key_column.props.dense:
        return None
    return positional_positions(probe_values, key_column.props.dense_base,
                                len(key_column))
