"""Staircase join family: iterative, loop-lifted, and pushdown variants."""

from .axes import ANY_ELEMENT, ANY_NODE, Axis, NodeTest, axis_region
from .baseline_joins import structural_join, structural_join_descendant_step
from .iterative import StaircaseStats, attribute_step, naive_axis, staircase_join
from .loop_lifted import (iterative_step, ll_attribute, ll_child,
                          ll_descendant, loop_lifted_step, normalize_context)
from .pushdown import (candidate_list, ll_child_pushdown,
                       ll_descendant_pushdown, loop_lifted_step_pushdown)

__all__ = [
    "ANY_ELEMENT",
    "ANY_NODE",
    "Axis",
    "NodeTest",
    "StaircaseStats",
    "attribute_step",
    "axis_region",
    "candidate_list",
    "iterative_step",
    "ll_attribute",
    "ll_child",
    "ll_child_pushdown",
    "ll_descendant",
    "ll_descendant_pushdown",
    "loop_lifted_step",
    "loop_lifted_step_pushdown",
    "naive_axis",
    "normalize_context",
    "staircase_join",
    "structural_join",
    "structural_join_descendant_step",
]
