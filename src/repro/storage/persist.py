"""The versioned on-disk document store (directory-per-store format).

A persisted store is a directory:

.. code-block:: text

    store/
      catalog.json          # format version, store version, document index
      d0001/                # one directory per document
        size.col  level.col  kind.col  name_id.col  frag.col
        attr_owner.col  attr_name.col
        value.col  attr_value.col          # string heaps
      d0002/ ...

Integer columns are flat 64-bit buffers behind a small self-describing
header; string columns are offsets-plus-UTF-8-blob heaps
(:mod:`repro.storage.backends`).  The catalog records, per document, the
name, ``order_key``, per-column byte counts and CRCs, the interned name
pool and the shred-time tag statistics — everything a reopened store
needs to be *warm* (no re-parse, no re-shred, optimizer statistics
intact).

**Atomic publish.**  Every file is written to a temporary sibling and
``os.replace``\\ d into place; the catalog is always written *last*, so
the catalog on disk only ever references complete column files.  Readers
that already mapped an old column file keep their snapshot (POSIX rename
leaves the old inode alive), which is exactly the snapshot discipline the
in-memory :class:`~repro.xml.document.DocumentStore` guarantees.

**Write-through.**  A store opened or saved through
:meth:`DocumentStore.save` stays *bound* to its directory: document
loads, drops and update commits rewrite only the column files whose
content changed (unchanged files are recognised by byte count + CRC and
skipped) and republish the catalog with the bumped store version.  The
persisted version is restored on ``open()``, so plan-cache and
subplan-cache keys — which embed the store version — remain valid across
restarts.

**Corruption detection.**  Structural checks (magic, header fields,
exact file sizes against the catalog) always run at ``open()`` and cost
``stat()`` only; they catch truncated and torn files.  ``verify=True``
additionally CRC-checks every payload (reads all column data — the
default for the RAM backend, which reads everything anyway; opt-in for
mmap to keep cold starts O(1) in document size).  All failures raise
:class:`~repro.errors.StorageError` naming the offending file.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from ..errors import StorageError
from .backends import MmapBackend, StringHeapView, encode_string_heap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..xml.document import DocumentContainer


#: bump when the directory layout / column encoding changes incompatibly
STORE_FORMAT = 1

CATALOG_NAME = "catalog.json"

_MAGIC = b"RXQC"
#: magic(4) version(u16) kind(u8) endian(u8) count(u64) aux(u64)
_HEADER = struct.Struct("<4sHBBQQ")
_KIND_INT = 0x69        # ord('i'): payload is count * 8 bytes of int64
_KIND_STR = 0x73        # ord('s'): count (offset, length) pairs + aux blob bytes
_ENDIAN = 0x3C if sys.byteorder == "little" else 0x3E    # '<' / '>'

#: the container's integer columns, in catalog order
INT_COLUMNS = ("size", "level", "kind", "name_id", "frag",
               "attr_owner", "attr_name")
#: the container's string columns (persisted as string heaps)
STR_COLUMNS = ("value", "attr_value")


# --------------------------------------------------------------------------- #
# low-level file helpers
# --------------------------------------------------------------------------- #
def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a temporary sibling + ``os.replace``."""
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _int_payload(values: Sequence[int]) -> bytes:
    if isinstance(values, array) and values.typecode == "q":
        return values.tobytes()
    if isinstance(values, memoryview):
        return values.tobytes()
    return array("q", values).tobytes()


def encode_int_column(values: Sequence[int]) -> bytes:
    """An integer column file image: header + raw int64 payload."""
    payload = _int_payload(values)
    header = _HEADER.pack(_MAGIC, STORE_FORMAT, _KIND_INT, _ENDIAN,
                          len(payload) // 8, 0)
    return header + payload


def encode_str_column(values: Sequence[str | None]) -> bytes:
    """A string column file image: header + offsets table + UTF-8 blob."""
    entries, blob = encode_string_heap(values)
    header = _HEADER.pack(_MAGIC, STORE_FORMAT, _KIND_STR, _ENDIAN,
                          len(entries) // 16, len(blob))
    return header + entries + blob


def _parse_header(raw: bytes, path: Path) -> tuple[int, int, int]:
    """Validate a column file header; returns ``(kind, count, aux)``."""
    if len(raw) < _HEADER.size:
        raise StorageError(f"column file {path} is truncated "
                           f"({len(raw)} bytes, header needs {_HEADER.size})")
    magic, fmt, kind, endian, count, aux = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        raise StorageError(f"column file {path} has a bad magic number")
    if fmt != STORE_FORMAT:
        raise StorageError(f"column file {path} has store format {fmt}, "
                           f"this build reads format {STORE_FORMAT}")
    if kind not in (_KIND_INT, _KIND_STR):
        raise StorageError(f"column file {path} has unknown column kind "
                           f"{kind:#x}")
    if endian != _ENDIAN:
        raise StorageError(f"column file {path} was written on a machine "
                           "with different byte order")
    return kind, count, aux


def _expected_size(kind: int, count: int, aux: int) -> int:
    if kind == _KIND_INT:
        return _HEADER.size + count * 8
    return _HEADER.size + count * 16 + aux


def _check_file(path: Path, entry: dict, *, verify: bool) -> None:
    """Structural (and optionally CRC) validation of one column file."""
    try:
        actual_size = path.stat().st_size
    except OSError:
        raise StorageError(f"column file {path} is missing") from None
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        kind, count, aux = _parse_header(header, path)
        if count != entry["count"]:
            raise StorageError(
                f"column file {path} holds {count} entries, the catalog "
                f"expects {entry['count']} (torn write?)")
        expected = _expected_size(kind, count, aux)
        if actual_size != expected:
            raise StorageError(
                f"column file {path} is {actual_size} bytes, expected "
                f"{expected} (truncated or torn write)")
        if verify:
            crc = 0
            while True:
                chunk = handle.read(1 << 20)
                if not chunk:
                    break
                crc = zlib.crc32(chunk, crc)
            if crc != entry["crc"]:
                raise StorageError(
                    f"column file {path} fails its checksum "
                    f"(stored {entry['crc']:#010x}, computed {crc:#010x})")


def resolve_verify(backend: str, verify: "bool | None") -> bool:
    """The one place the CRC-verification default per backend is decided.

    ``verify=None`` resolves to **full CRC checking for the RAM backend**
    (it reads every byte anyway, so the check is almost free and happens
    during the single load pass) and **structural-only checks for mmap**
    (magic/count/size from ``stat()``, keeping cold starts O(1) in
    document size).  Both open paths — ``DocumentStore.open``,
    ``MonetXQuery(store_path=…)`` and ``QueryServer(store_path=…)`` —
    route through here, so the flag means the same thing everywhere.
    """
    if verify is None:
        return backend == "ram"
    return verify


def _read_column_bytes(path: Path, entry: dict, *,
                       verify: bool = False) -> tuple[int, bytes, int]:
    """Fully read a column file; returns ``(kind, payload, aux)``.

    With ``verify`` the payload is CRC-checked against the catalog during
    this same read — the RAM open path verifies here instead of making a
    second full pass over the file.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    kind, count, aux = _parse_header(raw, path)
    expected = _expected_size(kind, count, aux)
    if len(raw) != expected or count != entry["count"]:
        raise StorageError(f"column file {path} is truncated or torn "
                           f"({len(raw)} bytes, expected {expected})")
    payload = raw[_HEADER.size:]
    if verify:
        crc = zlib.crc32(payload)
        if crc != entry["crc"]:
            raise StorageError(
                f"column file {path} fails its checksum "
                f"(stored {entry['crc']:#010x}, computed {crc:#010x})")
    return kind, payload, aux


def _map_column(path: Path, entry: dict, maps: list[mmap.mmap]
                ) -> "tuple[int, memoryview, int]":
    """Map a column file read-only; returns ``(kind, payload view, aux)``."""
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            raise StorageError(f"column file {path} is empty") from None
    maps.append(mapped)
    view = memoryview(mapped)
    kind, count, aux = _parse_header(view[:_HEADER.size].tobytes(), path)
    return kind, view[_HEADER.size:], aux


# --------------------------------------------------------------------------- #
# the bound store directory
# --------------------------------------------------------------------------- #
class StoreDirectory:
    """A document store's on-disk home, bound for write-through.

    Owns the catalog image and the per-document directories; all methods
    are called by :class:`~repro.xml.document.DocumentStore` under its
    exclusive write lock, so writers are serialized by construction.
    """

    def __init__(self, path: Path, catalog: dict):
        self.path = Path(path)
        self.catalog = catalog

    # -- creation ---------------------------------------------------------- #
    @classmethod
    def create(cls, path: "Path | str") -> "StoreDirectory":
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        catalog = {"format": STORE_FORMAT, "store_version": 0,
                   "order_counter": 0, "documents": {}}
        return cls(path, catalog)

    @classmethod
    def load(cls, path: "Path | str") -> "StoreDirectory":
        path = Path(path)
        catalog_path = path / CATALOG_NAME
        try:
            raw = catalog_path.read_text(encoding="utf-8")
        except OSError:
            raise StorageError(f"no store catalog at {catalog_path}") from None
        try:
            catalog = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"store catalog {catalog_path} is not valid JSON: {exc}"
            ) from None
        fmt = catalog.get("format")
        if fmt != STORE_FORMAT:
            raise StorageError(
                f"store catalog {catalog_path} has format {fmt!r}, this "
                f"build reads format {STORE_FORMAT}")
        for key in ("store_version", "order_counter", "documents"):
            if key not in catalog:
                raise StorageError(
                    f"store catalog {catalog_path} is missing {key!r}")
        return cls(path, catalog)

    # -- catalog ----------------------------------------------------------- #
    @property
    def store_version(self) -> int:
        return self.catalog["store_version"]

    def publish_catalog(self, *, store_version: int,
                        order_counter: int) -> None:
        """Atomically publish the catalog — the commit point of every save."""
        self.catalog["store_version"] = store_version
        self.catalog["order_counter"] = order_counter
        data = json.dumps(self.catalog, indent=1, sort_keys=True).encode("utf-8")
        _atomic_write(self.path / CATALOG_NAME, data)

    def document_names(self) -> list[str]:
        return list(self.catalog["documents"])

    # -- writing ----------------------------------------------------------- #
    def _document_dir(self, name: str) -> str:
        entry = self.catalog["documents"].get(name)
        if entry is not None:
            return entry["dir"]
        taken = {doc["dir"] for doc in self.catalog["documents"].values()}
        index = len(taken) + 1
        while f"d{index:04d}" in taken:
            index += 1
        return f"d{index:04d}"

    def write_container(self, container: "DocumentContainer") -> None:
        """Write a document's columns, skipping byte-identical files.

        Updates the in-memory catalog entry; the change becomes visible to
        future ``open()`` calls only at :meth:`publish_catalog`.
        """
        doc_dir = self._document_dir(container.name)
        directory = self.path / doc_dir
        directory.mkdir(exist_ok=True)
        previous = self.catalog["documents"].get(container.name, {})
        previous_columns = previous.get("columns", {})
        columns: dict[str, dict] = {}
        images: dict[str, bytes] = {}
        for column_name in INT_COLUMNS:
            images[column_name] = encode_int_column(
                getattr(container, column_name))
        for column_name in STR_COLUMNS:
            images[column_name] = encode_str_column(
                getattr(container, column_name))
        for column_name, image in images.items():
            payload = image[_HEADER.size:]
            kind, count, _aux = _parse_header(
                image, directory / f"{column_name}.col")
            entry = {
                "file": f"{column_name}.col",
                "kind": "str" if kind == _KIND_STR else "i64",
                "count": count,
                "crc": zlib.crc32(payload),
            }
            columns[column_name] = entry
            old = previous_columns.get(column_name)
            target = directory / entry["file"]
            if old == entry and target.exists() \
                    and target.stat().st_size == len(image):
                continue                      # unchanged column: keep the file
            _atomic_write(target, image)
        self.catalog["documents"][container.name] = {
            "dir": doc_dir,
            "order_key": container.order_key,
            "node_count": container.node_count,
            "attribute_count": container.attribute_count,
            "names": [[qname.local, qname.namespace]
                      for qname in container.names.all_names()],
            "tag_counts": sorted(container._tag_counts.items()),
            "columns": columns,
        }

    def remove_container(self, name: str) -> None:
        """Drop a document from the catalog and best-effort delete its files."""
        entry = self.catalog["documents"].pop(name, None)
        if entry is None:
            return
        directory = self.path / entry["dir"]
        for column in entry["columns"].values():
            try:
                (directory / column["file"]).unlink()
            except OSError:
                pass
        try:
            directory.rmdir()
        except OSError:
            pass

    # -- reading ----------------------------------------------------------- #
    def open_container(self, name: str, *, backend: str = "mmap",
                       verify: bool | None = None) -> "DocumentContainer":
        """Rebuild one document container from its column files.

        ``backend="mmap"`` maps the columns read-only (out-of-core);
        ``backend="ram"`` loads them fully into today's ``array('q')`` /
        ``list`` buffers — the pure-RAM ablation path, byte-identical in
        query results.  ``verify`` resolves through
        :func:`resolve_verify` (RAM verifies by default, during its
        single load pass; mmap runs structural checks only unless asked).
        """
        from ..xml.document import DocumentContainer

        entry = self.catalog["documents"].get(name)
        if entry is None:
            raise StorageError(f"store {self.path} has no document {name!r}")
        if backend not in ("mmap", "ram"):
            raise StorageError(f"unknown store backend {backend!r} "
                               "(expected 'mmap' or 'ram')")
        verify = resolve_verify(backend, verify)
        directory = self.path / entry["dir"]
        for column_name, column in entry["columns"].items():
            # the RAM loader verifies while reading; re-reading here would
            # scan every payload twice
            _check_file(directory / column["file"], column,
                        verify=verify and backend == "mmap")

        if backend == "mmap":
            container = self._open_mmap(name, entry, directory)
        else:
            container = self._open_ram(name, entry, directory, verify=verify)
        container.order_key = entry["order_key"]
        for local, namespace in entry["names"]:
            container.names.intern(local, namespace)
        container._tag_counts = {int(name_id): count
                                 for name_id, count in entry["tag_counts"]}
        if container.node_count != entry["node_count"] \
                or container.attribute_count != entry["attribute_count"]:
            raise StorageError(
                f"document {name!r} in store {self.path} has inconsistent "
                "column lengths (catalog/file mismatch)")
        return container

    def _open_mmap(self, name: str, entry: dict,
                   directory: Path) -> "DocumentContainer":
        from ..xml.document import DocumentContainer

        maps: list[mmap.mmap] = []
        int_columns: dict[str, memoryview] = {}
        str_columns: dict[str, StringHeapView] = {}
        for column_name, column in entry["columns"].items():
            path = directory / column["file"]
            kind, payload, aux = _map_column(path, column, maps)
            if kind == _KIND_INT:
                int_columns[column_name] = payload.cast("q")
            else:
                pairs_end = len(payload) - aux
                str_columns[column_name] = StringHeapView(
                    payload[:pairs_end].cast("q"), payload[pairs_end:],
                    str(path))
        backend = MmapBackend(int_columns, str_columns, maps,
                              label=str(self.path / entry["dir"]))
        return DocumentContainer(name, 0, backend=backend)

    def _open_ram(self, name: str, entry: dict, directory: Path, *,
                  verify: bool = False) -> "DocumentContainer":
        from ..xml.document import DocumentContainer

        container = DocumentContainer(name, 0)
        for column_name, column in entry["columns"].items():
            path = directory / column["file"]
            kind, payload, aux = _read_column_bytes(path, column,
                                                    verify=verify)
            if kind == _KIND_INT:
                values = array("q")
                values.frombytes(payload)
                setattr(container, column_name, values)
            else:
                pairs_end = len(payload) - aux
                entries = array("q")
                entries.frombytes(payload[:pairs_end])
                heap = StringHeapView(entries, payload[pairs_end:], str(path))
                setattr(container, column_name, heap.tolist())
        container._rebuild_attr_index()
        return container


# --------------------------------------------------------------------------- #
# store-level save / open (called by DocumentStore under its lock)
# --------------------------------------------------------------------------- #
def save_store(path: "Path | str", containers: "list[DocumentContainer]", *,
               store_version: int, order_counter: int) -> StoreDirectory:
    """Persist a set of containers as a fresh (or refreshed) store."""
    try:
        persistence = StoreDirectory.load(path)
    except StorageError:
        persistence = StoreDirectory.create(path)
    kept = {container.name for container in containers}
    for stale in [name for name in persistence.document_names()
                  if name not in kept]:
        persistence.remove_container(stale)
    for container in containers:
        persistence.write_container(container)
    persistence.publish_catalog(store_version=store_version,
                                order_counter=order_counter)
    return persistence


# --------------------------------------------------------------------------- #
# shared-memory segments (process-parallel serving)
# --------------------------------------------------------------------------- #
# A *shared store catalog* is the in-memory sibling of the on-disk catalog
# above: instead of per-document directories of column files it names one
# shared-memory segment per document, with a layout table locating every
# column inside the segment.  The publishing parent exports its containers
# once (containers are immutable after registration, so a segment is valid
# for as long as any catalog generation references it); worker processes
# attach the segments by name — zero-copy, read-only — and rebuild warm
# DocumentStore/DocumentContainer objects exactly like the mmap open path.

def new_segment_name() -> str:
    """A fresh globally-unique segment name (``rxq<pid>-<random>``).

    The pid prefix makes leaked segments attributable; the random suffix
    makes collisions with leftovers from crashed runs impossible in
    practice.
    """
    import secrets
    return f"rxq{os.getpid():x}-{secrets.token_hex(4)}"


def _pad8(n: int) -> int:
    return (n + 7) & ~7


def export_container_shared(container: "DocumentContainer"
                            ) -> "tuple[Any, dict]":
    """Copy a container's columns into one shared-memory segment.

    Returns ``(segment, entry)`` where ``entry`` is the document's
    catalog record: segment name, column layout (offset/count/aux per
    column, 8-byte aligned), the interned name pool, shred-time tag
    statistics and the structural counts — everything
    :func:`attach_container_shared` needs to rebuild the container warm.
    The segment is created (and later unlinked) by the caller's process;
    the container itself is not modified.
    """
    from .backends import create_segment

    layout: list[dict] = []
    pieces: list[bytes] = []
    offset = 0
    for column_name in INT_COLUMNS:
        payload = _int_payload(getattr(container, column_name))
        layout.append({"name": column_name, "kind": "i64",
                       "offset": offset, "count": len(payload) // 8,
                       "aux": 0})
        pieces.append(payload)
        offset += len(payload)
        padding = _pad8(offset) - offset
        if padding:
            pieces.append(b"\0" * padding)
            offset += padding
    for column_name in STR_COLUMNS:
        entries, blob = encode_string_heap(getattr(container, column_name))
        layout.append({"name": column_name, "kind": "str",
                       "offset": offset, "count": len(entries) // 16,
                       "aux": len(blob)})
        pieces.append(entries)
        pieces.append(blob)
        offset += len(entries) + len(blob)
        padding = _pad8(offset) - offset
        if padding:
            pieces.append(b"\0" * padding)
            offset += padding

    image = b"".join(pieces)
    segment = create_segment(len(image), name=new_segment_name())
    segment.buf[:len(image)] = image
    entry = {
        "segment": segment.name,
        "order_key": container.order_key,
        "node_count": container.node_count,
        "attribute_count": container.attribute_count,
        "names": [[qname.local, qname.namespace]
                  for qname in container.names.all_names()],
        "tag_counts": sorted(container._tag_counts.items()),
        "columns": layout,
    }
    return segment, entry


def attach_container_shared(name: str, entry: dict) -> "DocumentContainer":
    """Rebuild one document container over an attached shared segment.

    The worker-side mirror of :func:`export_container_shared`: attaches
    the named segment read-only (without resource-tracker registration —
    the publishing parent owns the segment's lifetime) and carves the
    column views out of it, exactly like the mmap open path does over
    mapped column files.
    """
    from ..xml.document import DocumentContainer
    from .backends import SharedMemoryBackend, attach_segment

    try:
        segment = attach_segment(entry["segment"])
    except FileNotFoundError:
        raise StorageError(
            f"shared segment {entry['segment']!r} for document {name!r} "
            "is gone (reclaimed before this reader attached?)") from None
    buf = memoryview(segment.buf)
    int_columns: dict[str, memoryview] = {}
    str_columns: dict[str, StringHeapView] = {}
    for column in entry["columns"]:
        offset = column["offset"]
        count = column["count"]
        if column["kind"] == "i64":
            int_columns[column["name"]] = \
                buf[offset:offset + count * 8].cast("q")
        else:
            pairs_end = offset + count * 16
            str_columns[column["name"]] = StringHeapView(
                buf[offset:pairs_end].cast("q"),
                buf[pairs_end:pairs_end + column["aux"]],
                f"{entry['segment']}:{column['name']}")
    backend = SharedMemoryBackend(int_columns, str_columns, segment,
                                  label=entry["segment"])
    container = DocumentContainer(name, 0, backend=backend)
    container.order_key = entry["order_key"]
    for local, namespace in entry["names"]:
        container.names.intern(local, namespace)
    container._tag_counts = {int(name_id): count
                             for name_id, count in entry["tag_counts"]}
    if container.node_count != entry["node_count"] \
            or container.attribute_count != entry["attribute_count"]:
        raise StorageError(
            f"document {name!r} in shared segment {entry['segment']!r} has "
            "inconsistent column lengths (catalog/segment mismatch)")
    return container


def shared_catalog(documents: "dict[str, dict]", *, store_version: int,
                   order_counter: int, generation: int,
                   default_context: "str | None") -> dict:
    """Assemble one publishable shared-store catalog (a plain dict).

    ``documents`` maps document names to the entries
    :func:`export_container_shared` produced.  The catalog carries the
    store version (so worker-side plan/subplan cache keys match the
    parent's), the order counter, and the publishing generation the
    epoch-based segment reclamation is keyed on.
    """
    return {
        "format": STORE_FORMAT,
        "store_version": store_version,
        "order_counter": order_counter,
        "generation": generation,
        "default_context": default_context,
        "documents": dict(documents),
    }
