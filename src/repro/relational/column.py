"""Columns: the unit of storage of the column-at-a-time engine.

MonetDB stores every attribute as a Binary Association Table (BAT) whose
head is a dense, void (virtual) object identifier and whose tail is the
attribute value.  Because the head is always dense, a BAT degenerates to a
plain array.  We mirror that with a small representation lattice:

``Column`` (rep ``list``)
    the polymorphic fallback: a plain Python list of mixed values — the
    paper's ``item`` column (integers, strings, booleans, node surrogates).
``IntColumn`` (rep ``i64``)
    a typed column backed by ``array('q')`` (64-bit signed integers) — node
    surrogates by pre rank, ``iter``, ``pos``, structural ``size``/``level``
    columns.  Kernels over these columns avoid per-value boxing checks and
    use the C-speed ``array`` primitives (``index``, slicing, ``min``/``max``).
    A read-only ``memoryview`` cast to 64-bit ints — the shape the mmap
    buffer backend serves persisted column files as — is adopted without
    copying and behaves identically on every read path.
``DenseColumn`` (rep ``dense``)
    a *virtual* void column: ``base, base+1, ...`` represented by a
    ``range`` object — nothing is materialised.  Positional selection on a
    contiguous window stays virtual; everything else degrades to ``i64``.

All three share the :class:`Column` API (``values`` is always a sequence:
``list``, ``array`` or ``range``), so operators can dispatch on the
representation (:attr:`Column.rep`) but never have to.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Iterator, Sequence

from ..errors import ColumnTypeError
from .properties import ColumnProps, infer_column_props


def is_int64_buffer(values: Any) -> bool:
    """Whether a value sequence is a raw 64-bit integer buffer — an
    ``array('q')`` or a ``memoryview`` cast to int64 (the representation
    the mmap storage backend hands out for persisted columns)."""
    if isinstance(values, array):
        return values.typecode == "q"
    if isinstance(values, memoryview):
        return values.format == "q"
    return False


def values_equal(left: Sequence[Any], right: Sequence[Any]) -> bool:
    """Representation-independent sequence equality.

    ``array('q', [1, 2]) == [1, 2]`` is ``False`` in Python; column equality
    must not depend on whether a column happens to be typed, dense or a
    plain list, so mixed-representation comparisons fall back to an
    element-wise check (with the usual numeric cross-type semantics:
    ``1 == True == 1.0``).
    """
    if left is right:
        return True
    if type(left) is type(right):
        return left == right
    if len(left) != len(right):
        return False
    return all(a == b for a, b in zip(left, right))


class Column:
    """A named, materialised column of values.

    The column does not enforce a static type: like the paper's polymorphic
    ``item`` column it may mix integers, strings, booleans and node
    surrogates.  Property inference is optional (``infer=True``) because it
    costs a scan; operators that know the properties of their output set them
    analytically instead.
    """

    __slots__ = ("name", "values", "props")

    #: representation tag used for kernel dispatch and ``explain`` output
    rep = "list"

    def __init__(self, name: str, values: Sequence[Any] | None = None, *,
                 props: ColumnProps | None = None, infer: bool = False):
        self.name = name
        self.values: list[Any] = list(values) if values is not None else []
        if props is not None:
            self.props = props
        elif infer:
            self.props = infer_column_props(self.values)
        else:
            self.props = ColumnProps()

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and values_equal(self.values, other.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        preview = ", ".join(repr(v) for v in self.values[:6])
        if len(self.values) > 6:
            preview += ", ..."
        return (f"{type(self).__name__}({self.name!r}, [{preview}], "
                f"props={self.props.describe()})")

    def tolist(self) -> list[Any]:
        """The values as a plain list (copies for typed representations)."""
        return list(self.values)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def dense(cls, name: str, count: int, base: int = 0) -> "DenseColumn":
        """Create a dense (virtual, void-head) sequence column ``base, base+1, ..``."""
        return DenseColumn(name, count, base=base)

    @classmethod
    def constant(cls, name: str, value: Any, count: int) -> "Column":
        """Create a constant column repeating ``value`` ``count`` times."""
        props = ColumnProps(const=True, const_value=value, key=count <= 1)
        return cls(name, [value] * count, props=props)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def renamed(self, name: str) -> "Column":
        """Return a copy of the column under a different name."""
        return Column(name, self.values, props=self.props.copy())

    def _take_props(self) -> ColumnProps:
        props = ColumnProps()
        if self.props.const:
            props.const = True
            props.const_value = self.props.const_value
        return props

    def take(self, positions: Iterable[int]) -> "Column":
        """Positional selection: new column with ``values[p] for p in positions``.

        This is MonetDB's ``fetchjoin`` / positional lookup primitive; it is
        only valid because the implicit row id of a materialised column is
        dense.
        """
        values = self.values
        try:
            picked = [values[p] for p in positions]
        except IndexError as exc:
            raise ColumnTypeError(
                f"positional lookup out of range on column {self.name!r}") from exc
        return Column(self.name, picked, props=self._take_props())

    def append_column(self, other: "Column") -> None:
        """Destructively append the values of ``other`` (same name required)."""
        if other.name != self.name:
            raise ColumnTypeError(
                f"cannot append column {other.name!r} to column {self.name!r}")
        self.values.extend(other.values)
        self.props = ColumnProps()

    def refresh_props(self) -> ColumnProps:
        """Re-infer the properties from the current values."""
        self.props = infer_column_props(self.values)
        return self.props


class IntColumn(Column):
    """A typed 64-bit integer column backed by ``array('q')``.

    The workhorse representation for ``iter``/``pos`` columns, node pre
    ranks and the structural document encoding.  Construction from an
    existing ``array('q')`` adopts it without copying (operators never
    mutate an input column, so sharing is safe); any other iterable is
    converted.
    """

    __slots__ = ()

    rep = "i64"

    def __init__(self, name: str, values: Iterable[int] | None = None, *,
                 props: ColumnProps | None = None, infer: bool = False):
        self.name = name
        if is_int64_buffer(values):
            self.values = values
        else:
            self.values = array("q", values if values is not None else ())
        if props is not None:
            self.props = props
        elif infer:
            self.props = infer_column_props(self.values)
        else:
            self.props = ColumnProps()

    def renamed(self, name: str) -> "IntColumn":
        # adoption constructor: the array is shared, not copied
        return IntColumn(name, self.values, props=self.props.copy())

    def take(self, positions: Iterable[int]) -> "IntColumn":
        values = self.values
        if isinstance(positions, range) and positions.step == 1 \
                and (len(positions) == 0
                     or (positions.start >= 0 and positions.stop <= len(values))):
            # contiguous window: one C-level slice instead of a Python loop
            picked = values[positions.start:positions.stop]
        else:
            try:
                picked = array("q", (values[p] for p in positions))
            except IndexError as exc:
                raise ColumnTypeError(
                    f"positional lookup out of range on column "
                    f"{self.name!r}") from exc
        return IntColumn(self.name, picked, props=self._take_props())

    def append_column(self, other: "Column") -> None:
        if other.name != self.name:
            raise ColumnTypeError(
                f"cannot append column {other.name!r} to column {self.name!r}")
        if isinstance(self.values, memoryview):
            # a mapped column file is immutable; growing it materialises
            self.values = array("q", self.values)
        length_before = len(self.values)
        try:
            self.values.extend(other.values)
        except TypeError as exc:
            # array.extend may have appended a prefix before failing —
            # roll it back so the column is untouched on error
            del self.values[length_before:]
            raise ColumnTypeError(
                f"cannot append non-integer values to typed column "
                f"{self.name!r}") from exc
        self.props = ColumnProps()


class DenseColumn(Column):
    """A virtual void-head column: ``base, base+1, ...`` with no storage.

    ``values`` is a ``range`` object, so every read path (iteration,
    indexing, ``len``, membership) works like any other column while taking
    O(1) memory.  Positional selection of a contiguous window yields another
    :class:`DenseColumn`; arbitrary selections materialise an
    :class:`IntColumn` by offset arithmetic.
    """

    __slots__ = ()

    rep = "dense"

    def __init__(self, name: str, count: int, base: int = 0, *,
                 props: ColumnProps | None = None):
        self.name = name
        self.values = range(base, base + count)
        if props is not None:
            self.props = props
        else:
            self.props = ColumnProps(dense=True, dense_base=base, key=True)

    @property
    def base(self) -> int:
        return self.values.start

    def renamed(self, name: str) -> "DenseColumn":
        return DenseColumn(name, len(self.values), base=self.values.start,
                           props=self.props.copy())

    def take(self, positions: Iterable[int]) -> "Column":
        values = self.values
        if isinstance(positions, range) and positions.step == 1:
            if len(positions) == 0:
                return DenseColumn(self.name, 0, base=values.start)
            if positions.start >= 0 and positions.stop <= len(values):
                # a window of a dense column stays virtual
                return DenseColumn(self.name, len(positions),
                                   base=values.start + positions.start)
        try:
            picked = array("q", (values[p] for p in positions))
        except IndexError as exc:
            raise ColumnTypeError(
                f"positional lookup out of range on column {self.name!r}") from exc
        return IntColumn(self.name, picked)

    def append_column(self, other: "Column") -> None:
        raise ColumnTypeError(
            f"dense column {self.name!r} is virtual; materialise before "
            "appending")


def int_column_values(column: Column) -> "array | memoryview | range | None":
    """The typed backing sequence of a column, or ``None`` for list columns.

    Kernels use this to decide whether the integer fast path applies:
    ``array('q')``, int64 ``memoryview`` (mmap-backed columns) and
    ``range`` values are guaranteed all-int with no boxing surprises (no
    ``bool``, no ``float``).
    """
    values = column.values
    if is_int64_buffer(values):
        return values
    if isinstance(values, range):
        return values
    return None


def concat_values(parts: Sequence[Sequence[Any]]) -> "list | array":
    """Concatenate value sequences, keeping the typed representation when
    every part is typed (``array('q')``, int64 ``memoryview`` or ``range``)."""
    if parts and all(isinstance(part, (array, range)) or is_int64_buffer(part)
                     for part in parts):
        merged_array = array("q")
        for part in parts:
            merged_array.extend(part)
        return merged_array
    merged: list[Any] = []
    for part in parts:
        merged.extend(part)
    return merged


def make_column(name: str, values: Sequence[Any], *,
                props: ColumnProps | None = None) -> Column:
    """Build a column choosing the representation from the value sequence."""
    if isinstance(values, range):
        column = DenseColumn(name, len(values), base=values.start)
        if props is not None:
            column.props = props
        return column
    if is_int64_buffer(values):
        return IntColumn(name, values, props=props)
    return Column(name, values, props=props)
