"""Persistence: cold starts, warm restarts, out-of-core reads.

The point of the persisted store is that restarting costs *opening files*,
not re-parsing XML: ``DocumentStore.open()`` maps (or bulk-loads) the
column files and answers its first query immediately.  The benchmark
measures

* **cold start vs. re-shred** — open-to-first-query time against
  parse+shred of the same XMark document.  The ratio grows with document
  size (shredding is linear in the text, mmap opening is O(1) in it);
  at ``REPRO_BENCH_SCALE >= 0.5`` the bench *asserts* the >= 5x speedup,
  below that it only records the ratio.
* **out-of-core reads** — a subprocess opens the store mmap-backed and
  scans a single column; its peak RSS must stay below the total
  column-file footprint at scale >= 1.0 (columns you don't touch are
  never paged in), which is what lets a store serve documents larger
  than RAM.
* **write-through cost** — committing a small update to a bound store
  rewrites only the changed column files, so the cost is proportional to
  the change, not to a full save.

Results land in ``BENCH_bench_persistence.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.xmark import generate_document
from repro.xml import shred_document
from repro.xml.document import DocumentStore

from .conftest import BASE_SCALE, SEED, write_bench_json


#: the speedup/RSS assertions only engage at the scales the paper-style
#: claim is about; smoke runs (CI) record the numbers without gating
ASSERT_SPEEDUP_SCALE = 0.5
ASSERT_RSS_SCALE = 1.0
RESHRED_SPEEDUP = 5.0

_RESULTS: dict[str, object] = {}


@pytest.fixture(scope="module")
def persisted(tmp_path_factory):
    """A saved XMark store plus the raw text it was shredded from."""
    text = generate_document(BASE_SCALE, SEED)
    store = DocumentStore()
    container = shred_document(text, "auction.xml", store)
    path = tmp_path_factory.mktemp("persist") / "store"
    store.save(path)
    return path, text, container.node_count


def _column_footprint(path) -> int:
    return sum(column.stat().st_size for doc in path.iterdir() if doc.is_dir()
               for column in doc.glob("*.col"))


def test_cold_start_beats_reshred(benchmark, persisted):
    path, text, nodes = persisted

    def cold_start():
        store = DocumentStore.open(path)            # mmap
        count = store.get("auction.xml").tag_count("person")
        store.close()
        return count

    first_answer = benchmark.pedantic(cold_start, rounds=3, iterations=1,
                                      warmup_rounds=0)
    assert first_answer > 0

    open_times = []
    for _ in range(3):
        started = time.perf_counter()
        cold_start()
        open_times.append(time.perf_counter() - started)
    started = time.perf_counter()
    scratch = DocumentStore()
    shred_document(text, "auction.xml", scratch)
    shred_time = time.perf_counter() - started

    open_time = min(open_times)
    ratio = shred_time / open_time if open_time else float("inf")
    benchmark.extra_info["experiment"] = "cold-start-vs-reshred"
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["open_s"] = open_time
    benchmark.extra_info["reshred_s"] = shred_time
    benchmark.extra_info["speedup"] = ratio
    _RESULTS["cold_start"] = {
        "nodes": nodes, "open_s": open_time, "reshred_s": shred_time,
        "speedup": ratio,
    }
    if BASE_SCALE >= ASSERT_SPEEDUP_SCALE:
        assert ratio >= RESHRED_SPEEDUP, (
            f"cold start must be >= {RESHRED_SPEEDUP}x faster than "
            f"parse+shred at scale {BASE_SCALE} (got {ratio:.1f}x)")


_CHILD_SCAN = r"""
import json, sys, time
from repro.xml.document import DocumentStore

def current_rss_bytes():
    # ru_maxrss is poisoned by the copy-on-write baseline inherited from
    # the (large) bench runner at fork time; the *current* VmRSS after the
    # scan is the honest out-of-core number: interpreter + touched pages
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    return 0

path, backend = sys.argv[1], sys.argv[2]
started = time.perf_counter()
store = DocumentStore.open(path, backend=backend)
container = store.get("auction.xml")
open_s = time.perf_counter() - started
started = time.perf_counter()
elements = sum(1 for kind in container.kind if kind == 1)
scan_s = time.perf_counter() - started
print(json.dumps({
    "open_s": open_s, "scan_s": scan_s, "elements": elements,
    "rss_bytes": current_rss_bytes(),
}))
"""


def _run_child(path, backend: str) -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", _CHILD_SCAN, str(path), backend],
        capture_output=True, text=True, env=env, check=True)
    return json.loads(output.stdout)


def test_out_of_core_rss(persisted):
    """A fresh process scanning one mapped column must not pay for the
    others: peak RSS stays below the total column footprint (asserted at
    scale >= 1.0; recorded always)."""
    path, _text, nodes = persisted
    footprint = _column_footprint(path)
    mmap_child = _run_child(path, "mmap")
    ram_child = _run_child(path, "ram")
    assert mmap_child["elements"] == ram_child["elements"] > 0
    _RESULTS["out_of_core"] = {
        "nodes": nodes,
        "column_footprint_bytes": footprint,
        "mmap": mmap_child,
        "ram": ram_child,
    }
    if BASE_SCALE >= ASSERT_RSS_SCALE:
        assert mmap_child["rss_bytes"] < footprint, (
            f"mmap scan RSS {mmap_child['rss_bytes']} must stay below "
            f"the {footprint}-byte column footprint at scale {BASE_SCALE}")


def test_write_through_rewrites_only_changes(persisted):
    """Committing a small update to a bound store must be far cheaper than
    the initial save: unchanged column files are skipped by CRC."""
    path, text, nodes = persisted
    engine_store = DocumentStore.open(path, backend="ram")

    started = time.perf_counter()
    engine_store.save(path)                  # no-op save: everything skipped
    noop_save = time.perf_counter() - started

    container = engine_store.get("auction.xml")
    mtimes = {column.name: column.stat().st_mtime_ns
              for doc in path.iterdir() if doc.is_dir()
              for column in doc.glob("*.col")}
    started = time.perf_counter()
    engine_store.replace(container)          # identical commit: write-through
    commit_time = time.perf_counter() - started
    after = {column.name: column.stat().st_mtime_ns
             for doc in path.iterdir() if doc.is_dir()
             for column in doc.glob("*.col")}
    assert after == mtimes                   # no column file rewritten

    _RESULTS["write_through"] = {
        "nodes": nodes,
        "noop_save_s": noop_save,
        "identical_commit_s": commit_time,
    }


def test_write_artifact():
    """Last test of the module: publish the collected measurements."""
    write_bench_json("bench_persistence", dict(_RESULTS))
