"""Storage layer: buffer backends, the persisted store, page-wise updates.

Three cooperating pieces:

* :mod:`repro.storage.backends` — the pluggable buffer backends the typed
  document columns sit on (:class:`RamBackend`, :class:`MmapBackend`);
* :mod:`repro.storage.persist` — the versioned directory-per-store
  on-disk format (``DocumentStore.save()`` / ``DocumentStore.open()``);
* :mod:`repro.storage.pages` / :mod:`~repro.storage.updatable` — the
  page-wise remappable storage (Section 5.2) that
  :class:`~repro.xquery.updates.XMLUpdater` runs structural updates
  through before committing (and, on a persisted store, writing through).

Submodules are re-exported lazily (PEP 562): ``updatable`` imports the
XML document layer, which in turn reaches back into
``storage.backends`` — eager imports here would make that a cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "Backend": "backends",
    "MmapBackend": "backends",
    "RamBackend": "backends",
    "SharedMemoryBackend": "backends",
    "StringHeapView": "backends",
    "attach_segment": "backends",
    "create_segment": "backends",
    "unlink_segment": "backends",
    "DeltaRecord": "locking",
    "SizeDeltaLedger": "locking",
    "TransactionManager": "locking",
    "STORE_FORMAT": "persist",
    "StoreDirectory": "persist",
    "attach_container_shared": "persist",
    "export_container_shared": "persist",
    "resolve_verify": "persist",
    "shared_catalog": "persist",
    "PagedStructure": "pages",
    "UNUSED": "pages",
    "UpdatableDocument": "updatable",
    "UpdateStats": "updatable",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
