"""Unit tests for the typed column representations (i64 / dense / list).

The representation lattice must be invisible to consumers: equality,
property inference and the positional primitives have to behave identically
whether a column is a plain list, an ``array('q')`` or a virtual ``range``.
"""

from array import array

import pytest

from repro.errors import ColumnTypeError
from repro.relational import (Column, DenseColumn, IntColumn, Table,
                              make_column, values_equal)
from repro.relational import operators as ops
from repro.relational.explain import capture
from repro.relational.properties import infer_column_props, is_dense_sequence


class TestRepresentations:
    def test_dense_is_virtual(self):
        column = Column.dense("iter", 1000, base=5)
        assert isinstance(column, DenseColumn)
        assert isinstance(column.values, range)
        assert column[0] == 5 and column[999] == 1004
        assert len(column) == 1000
        assert column.props.dense and column.props.key
        assert column.props.dense_base == 5

    def test_int_column_adopts_arrays_without_copy(self):
        backing = array("q", [1, 2, 3])
        column = IntColumn("pre", backing)
        assert column.values is backing

    def test_int_column_converts_iterables(self):
        column = IntColumn("pre", (value for value in [3, 1, 2]))
        assert isinstance(column.values, array)
        assert column.tolist() == [3, 1, 2]

    def test_make_column_picks_representation(self):
        assert isinstance(make_column("a", range(3)), DenseColumn)
        assert isinstance(make_column("a", array("q", [1])), IntColumn)
        assert isinstance(make_column("a", ["x"]), Column)
        assert type(make_column("a", [1, 2])) is Column

    def test_reps_are_labelled(self):
        assert Column("a", [1]).rep == "list"
        assert IntColumn("a", [1]).rep == "i64"
        assert Column.dense("a", 1).rep == "dense"


class TestCrossRepresentationEquality:
    def test_values_equal_across_representations(self):
        assert values_equal([1, 2, 3], array("q", [1, 2, 3]))
        assert values_equal(range(1, 4), [1, 2, 3])
        assert values_equal(array("q", [1, 2, 3]), range(1, 4))
        assert not values_equal([1, 2], [1, 2, 3])
        assert not values_equal(range(3), [0, 1, 5])

    def test_column_eq_is_representation_independent(self):
        as_list = Column("iter", [1, 2, 3])
        as_array = IntColumn("iter", [1, 2, 3])
        as_dense = Column.dense("iter", 3, base=1)
        assert as_list == as_array == as_dense
        assert as_list == as_dense  # dense vs materialized-int comparison
        assert Column("other", [1, 2, 3]) != as_array

    def test_table_eq_is_representation_independent(self):
        typed = Table([IntColumn("iter", [1, 2]), Column("item", ["a", "b"])])
        plain = Table([Column("iter", [1, 2]), Column("item", ["a", "b"])])
        assert typed == plain
        assert typed != Table([IntColumn("iter", [1, 3]),
                               Column("item", ["a", "b"])])


class TestPropertyInference:
    def test_infer_props_on_arrays(self):
        props = infer_column_props(array("q", [4, 5, 6]))
        assert props.dense and props.dense_base == 4 and props.key

    def test_infer_props_on_ranges_without_scan(self):
        props = infer_column_props(range(7, 7 + 10 ** 9))  # would never scan
        assert props.dense and props.dense_base == 7

    def test_is_dense_sequence_on_range(self):
        assert is_dense_sequence(range(3, 9)) == (True, 3)
        assert is_dense_sequence(range(0, 10, 2)) == (False, 0)
        assert is_dense_sequence(range(0)) == (True, 0)

    def test_infer_key_on_array(self):
        props = infer_column_props(array("q", [5, 3, 9]))
        assert props.key and not props.dense


class TestTypedTake:
    def test_int_take_returns_int_column(self):
        column = IntColumn("pre", [10, 20, 30, 40])
        picked = column.take([3, 0])
        assert isinstance(picked, IntColumn)
        assert picked.tolist() == [40, 10]

    def test_int_take_contiguous_window_slices(self):
        column = IntColumn("pre", list(range(100)))
        picked = column.take(range(10, 20))
        assert isinstance(picked, IntColumn)
        assert picked.tolist() == list(range(10, 20))

    def test_dense_take_window_stays_dense(self):
        column = Column.dense("iter", 100, base=1)
        window = column.take(range(5, 10))
        assert isinstance(window, DenseColumn)
        assert window.tolist() == [6, 7, 8, 9, 10]
        assert window.props.dense and window.props.dense_base == 6

    def test_dense_take_scattered_materializes_ints(self):
        column = Column.dense("iter", 10, base=0)
        picked = column.take([9, 0, 4])
        assert isinstance(picked, IntColumn)
        assert picked.tolist() == [9, 0, 4]

    def test_take_out_of_range_raises_uniformly(self):
        for column in (Column("a", [1, 2]), IntColumn("a", [1, 2]),
                       Column.dense("a", 2)):
            with pytest.raises(ColumnTypeError):
                column.take([5])

    def test_renamed_shares_typed_storage(self):
        column = IntColumn("a", [1, 2, 3])
        renamed = column.renamed("b")
        assert renamed.values is column.values
        assert renamed.name == "b"
        dense = Column.dense("a", 4, base=2).renamed("b")
        assert isinstance(dense, DenseColumn)
        assert dense.tolist() == [2, 3, 4, 5]


class TestTypedKernels:
    def test_select_eq_int_scan(self):
        table = Table([IntColumn("k", [7, 3, 7, 9]), Column("v", list("abcd"))])
        with capture() as trace:
            result = ops.select_eq(table, "k", 7, use_positional=False)
        assert list(result.col("v")) == ["a", "c"]
        assert trace.count("select.int-scan") == 1

    def test_select_eq_int_scan_cross_type_semantics(self):
        table = Table([IntColumn("k", [1, 0, 2])])
        assert ops.select_eq(table, "k", True,
                             use_positional=False).row_count == 1
        assert ops.select_eq(table, "k", 2.0,
                             use_positional=False).row_count == 1
        assert ops.select_eq(table, "k", 1.5,
                             use_positional=False).row_count == 0
        assert ops.select_eq(table, "k", "1",
                             use_positional=False).row_count == 0

    def test_select_eq_matches_list_semantics(self):
        values = [5, 1, 5, 2, 5]
        typed = Table([IntColumn("k", values)])
        plain = Table([Column("k", list(values))])
        for probe in (5, 1, 99, True, 5.0, "5"):
            assert ops.select_eq(typed, "k", probe, use_positional=False) \
                == ops.select_eq(plain, "k", probe, use_positional=False)

    def test_positional_join_on_typed_probe(self):
        left = Table([IntColumn("fk", [2, 0, 1])])
        right = Table([Column.dense("rid", 3),
                       Column("payload", ["x", "y", "z"])])
        with capture() as trace:
            result = ops.join(left, right, "fk", "rid")
        assert list(result.col("payload")) == ["z", "x", "y"]
        assert trace.count("join.positional") == 1

    def test_positional_join_miss_falls_back_to_hash(self):
        left = Table([IntColumn("fk", [0, 7])])         # 7 misses the build
        right = Table([Column.dense("rid", 3), Column("p", ["x", "y", "z"])])
        with capture() as trace:
            result = ops.join(left, right, "fk", "rid")
        assert trace.count("join.hash") == 1
        assert list(result.col("p")) == ["x"]

    def test_union_all_preserves_typed_columns(self):
        first = Table([IntColumn("iter", [1, 2])])
        second = Table([Column.dense("iter", 2, base=3)])
        merged = ops.union_all([first, second])
        assert merged.column("iter").rep == "i64"
        assert merged.column("iter").tolist() == [1, 2, 3, 4]

    def test_rownum_without_partition_is_dense(self):
        table = Table.from_dict({"v": [5, 6, 7]})
        result = ops.rownum(table, "rank", ())
        assert isinstance(result.column("rank"), DenseColumn)
        assert list(result.col("rank")) == [1, 2, 3]
        assert result.col_props("rank").dense


class TestAppend:
    def test_int_append_rejects_non_integers(self):
        column = IntColumn("a", [1])
        with pytest.raises(ColumnTypeError):
            column.append_column(Column("a", ["x"]))

    def test_dense_append_refuses(self):
        with pytest.raises(ColumnTypeError):
            Column.dense("a", 2).append_column(Column("a", [7]))
