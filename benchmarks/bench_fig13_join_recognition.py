"""Figure 13 — XQuery join recognition on the XMark join queries Q8–Q12.

Without join recognition the loop-lifted plans materialise huge Cartesian
products (persons × auctions); with it, the value join is evaluated directly
and the queries scale linearly.  Expected shape: "join" beats "cross product"
by a growing factor as the document grows.
"""

import pytest

from repro.xmark import JOIN_QUERIES, XMARK_QUERIES


@pytest.mark.parametrize("mode", ["join", "cross-product"])
@pytest.mark.parametrize("query", JOIN_QUERIES)
def test_fig13_join_vs_cross_product(benchmark, xmark_engine, query, mode):
    options = xmark_engine.options.replace(join_recognition=(mode == "join"))
    text = XMARK_QUERIES[query]

    def run():
        xmark_engine.reset_transient()
        return len(xmark_engine.query(text, options=options))

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["figure"] = "fig13"
    benchmark.extra_info["query"] = f"Q{query}"
    benchmark.extra_info["config"] = mode
    benchmark.extra_info["result_size"] = result
