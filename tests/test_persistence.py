"""The persistent document store: save / reopen / write-through / corruption.

Covers the storage-backend seam (``RamBackend`` vs ``MmapBackend``), the
directory-per-store on-disk format (:mod:`repro.storage.persist`), warm
restarts (a reopened store answers queries with *no* re-parse/re-shred and
with the optimizer statistics intact), update-commit write-through, and
the failure modes: truncated column files, bit-flips, catalog mismatches —
every one must surface as a :class:`~repro.errors.StorageError` naming the
offending file, never as garbage results.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import EngineOptions, MonetXQuery
from repro.errors import DocumentError, StorageError
from repro.relational.cardinality import StoreStatistics
from repro.storage.backends import (HEAP_NONE, MmapBackend, RamBackend,
                                    StringHeapView, encode_string_heap)
from repro.storage.persist import STORE_FORMAT, StoreDirectory
from repro.xml.document import DocumentStore

from conftest import SMALL_XML
from test_differential import OPTION_NAMES, generated_queries

#: every query of the differential corpus that does not construct nodes is
#: usable against a read-only store as-is; constructors write into the
#: (always RAM-backed) transient container, so all of them are usable
PERSISTENCE_COMBINATION_SEED = 70101
PERSISTENCE_COMBINATION_COUNT = 4


def persisted_path(tmp_path):
    return tmp_path / "store"


@pytest.fixture
def saved_engine(tmp_path):
    """An engine with the fixture document loaded, saved to disk."""
    engine = MonetXQuery()
    engine.load_document_text(SMALL_XML, name="auction.xml")
    engine.save_store(persisted_path(tmp_path))
    return engine


def ablation_configurations():
    """Default + sampled multi-switch combos (seeded, reproducible)."""
    configurations = [("default", EngineOptions())]
    rng = random.Random(PERSISTENCE_COMBINATION_SEED)
    for index in range(PERSISTENCE_COMBINATION_COUNT):
        flipped = rng.sample(OPTION_NAMES, rng.randint(2, len(OPTION_NAMES)))
        configurations.append(
            (f"combo-{index}", EngineOptions(**{name: False
                                                for name in flipped})))
    return configurations


# --------------------------------------------------------------------------- #
# save → reopen equivalence (the differential harness over the store)
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    @pytest.mark.parametrize("backend", ["mmap", "ram"])
    def test_persisted_results_bit_identical(self, saved_engine, tmp_path,
                                             backend):
        """Every generated query, under sampled ablation combos, must
        serialize identically from the persisted store (both backends)
        and from the in-RAM original."""
        reopened = MonetXQuery(store_path=persisted_path(tmp_path),
                               store_backend=backend)
        try:
            for config_name, options in ablation_configurations():
                for query in generated_queries():
                    expected = saved_engine.query(query,
                                                  options=options).serialize()
                    actual = reopened.query(query, options=options).serialize()
                    assert actual == expected, (
                        f"{backend} store diverged under {config_name!r} "
                        f"on:\n{query}")
        finally:
            reopened.store.close()

    def test_ram_switch_restores_pure_ram_path(self, saved_engine, tmp_path):
        """backend='ram' must leave no mapped buffers behind: every column
        is an ordinary array('q') / list, exactly the pre-persistence
        representation."""
        from array import array

        store = DocumentStore.open(persisted_path(tmp_path), backend="ram")
        container = store.get("auction.xml")
        assert isinstance(container.backend, RamBackend) \
            or not container.backend.readonly
        for name in ("size", "level", "kind", "name_id", "frag",
                     "attr_owner", "attr_name"):
            assert isinstance(getattr(container, name), array)
        assert isinstance(container.value, list)
        assert isinstance(container.attr_value, list)

    def test_mmap_columns_are_views(self, saved_engine, tmp_path):
        store = DocumentStore.open(persisted_path(tmp_path))
        container = store.get("auction.xml")
        assert container.backend.readonly
        assert isinstance(container.size, memoryview)
        assert isinstance(container.value, StringHeapView)
        store.close()

    def test_reopen_is_warm_no_reshred(self, saved_engine, tmp_path,
                                       monkeypatch):
        """A reopened store must never touch the XML parser/shredder."""
        import repro.xml.shredder as shredder

        def explode(*args, **kwargs):     # pragma: no cover - must not run
            raise AssertionError("reopen must not re-shred")

        monkeypatch.setattr(shredder, "shred_document", explode)
        monkeypatch.setattr(shredder, "shred_file", explode)
        engine = MonetXQuery(store_path=persisted_path(tmp_path))
        assert engine.query("count(//person)").items == \
            saved_engine.query("count(//person)").items
        engine.store.close()

    def test_statistics_rehydrated(self, saved_engine, tmp_path):
        """The shred-time tag statistics feed the cost-based optimizer; a
        reopened store must expose the identical snapshot."""
        expected = StoreStatistics.from_store(saved_engine.store)
        for backend in ("mmap", "ram"):
            store = DocumentStore.open(persisted_path(tmp_path),
                                       backend=backend)
            restored = StoreStatistics.from_store(store)
            assert restored.tag_counts == dict(expected.tag_counts)
            assert restored.total_nodes == expected.total_nodes
            assert restored.total_elements == expected.total_elements
            store.close()

    def test_version_and_order_key_survive(self, saved_engine, tmp_path):
        store = DocumentStore.open(persisted_path(tmp_path))
        assert store.version == saved_engine.store.version
        assert store.get("auction.xml").order_key == \
            saved_engine.store.get("auction.xml").order_key
        store.close()

    def test_multiple_documents(self, tmp_path):
        engine = MonetXQuery()
        engine.load_document_text("<a><x/></a>", name="one.xml")
        engine.load_document_text("<b><y/><y/></b>", name="two.xml")
        engine.save_store(persisted_path(tmp_path))
        reopened = MonetXQuery(store_path=persisted_path(tmp_path))
        assert sorted(reopened.store.names()) == ["one.xml", "two.xml"]
        assert reopened.query("count(doc('two.xml')//y)").items == [2]
        # document order across containers is the persisted order_key
        assert reopened.store.get("one.xml").order_key \
            < reopened.store.get("two.xml").order_key
        reopened.store.close()


# --------------------------------------------------------------------------- #
# write-through: loads, drops and update commits keep the directory current
# --------------------------------------------------------------------------- #
class TestWriteThrough:
    def test_load_after_save_is_persisted(self, saved_engine, tmp_path):
        saved_engine.load_document_text("<extra><n/></extra>", name="extra.xml")
        reopened = MonetXQuery(store_path=persisted_path(tmp_path))
        assert "extra.xml" in reopened.store.names()
        assert reopened.query("count(doc('extra.xml')//n)").items == [1]
        reopened.store.close()

    def test_drop_after_save_is_persisted(self, saved_engine, tmp_path):
        saved_engine.load_document_text("<extra/>", name="extra.xml")
        saved_engine.drop_document("extra.xml")
        store = DocumentStore.open(persisted_path(tmp_path))
        assert store.names() == ["auction.xml"]
        store.close()

    def test_update_commit_round_trip(self, saved_engine, tmp_path):
        """An XMLUpdater commit (which runs through the page-wise updatable
        layout) must write through; a reopen sees the updated document with
        the order_key preserved and the store version advanced."""
        from repro import XMLUpdater

        version_before = saved_engine.store.version
        order_key = saved_engine.store.get("auction.xml").order_key
        updater = XMLUpdater(saved_engine, "auction.xml")
        target = updater.select("/site/people")[0]
        updater.insert_last(target, '<person id="person9"><name>Zoe</name>'
                                    "</person>")
        updater.commit()
        assert saved_engine.store.version == version_before + 1

        reopened = MonetXQuery(store_path=persisted_path(tmp_path))
        assert reopened.store.version == version_before + 1
        assert reopened.store.get("auction.xml").order_key == order_key
        assert reopened.query('//person[@id = "person9"]/name/text()'
                              ).strings() == ["Zoe"]
        assert reopened.query("count(//person)").items == \
            saved_engine.query("count(//person)").items
        reopened.store.close()

    def test_unchanged_columns_are_not_rewritten(self, saved_engine, tmp_path):
        """A second save (or a commit touching another document) must skip
        byte-identical column files — recognised by count + CRC."""
        import os

        store_dir = persisted_path(tmp_path)
        catalog = json.loads((store_dir / "catalog.json").read_text())
        doc_dir = store_dir / catalog["documents"]["auction.xml"]["dir"]
        before = {path.name: os.stat(path).st_mtime_ns
                  for path in doc_dir.glob("*.col")}
        saved_engine.load_document_text("<other/>", name="other.xml")
        after = {path.name: os.stat(path).st_mtime_ns
                 for path in doc_dir.glob("*.col")}
        assert after == before

    def test_commit_on_reopened_mmap_store(self, saved_engine, tmp_path):
        """The full cycle on a mapped store: reopen, update through the
        page-wise layout, commit (write-through), reopen again."""
        from repro import XMLUpdater

        engine = MonetXQuery(store_path=persisted_path(tmp_path))
        updater = XMLUpdater(engine, "auction.xml")
        target = updater.select("/site/regions/europe/item[1]")[0]
        updater.set_attribute(target, "featured", "yes")
        updater.commit()
        assert engine.query("count(//item[@featured])").items == [1]

        second = MonetXQuery(store_path=persisted_path(tmp_path))
        assert second.query("count(//item[@featured])").items == [1]
        assert second.store.version == engine.store.version
        second.store.close()
        engine.store.close()

    def test_readonly_container_rejects_direct_mutation(self, saved_engine,
                                                        tmp_path):
        from repro.xml.document import NodeKind

        store = DocumentStore.open(persisted_path(tmp_path))
        container = store.get("auction.xml")
        with pytest.raises(DocumentError, match="read-only"):
            container.add_node(NodeKind.TEXT, 1, value="x")
        with pytest.raises(DocumentError, match="read-only"):
            container.add_attribute(0, 0, "x")
        store.close()


# --------------------------------------------------------------------------- #
# corruption: truncation, bit-flips, catalog mismatches
# --------------------------------------------------------------------------- #
class TestCorruption:
    def _store_file(self, tmp_path, name="size.col"):
        store_dir = persisted_path(tmp_path)
        catalog = json.loads((store_dir / "catalog.json").read_text())
        doc_dir = store_dir / catalog["documents"]["auction.xml"]["dir"]
        return doc_dir / name

    def test_truncated_column_file(self, saved_engine, tmp_path):
        target = self._store_file(tmp_path)
        raw = target.read_bytes()
        target.write_bytes(raw[:len(raw) // 2])
        with pytest.raises(StorageError, match="size.col"):
            DocumentStore.open(persisted_path(tmp_path))

    def test_truncated_to_partial_header(self, saved_engine, tmp_path):
        target = self._store_file(tmp_path, "level.col")
        target.write_bytes(target.read_bytes()[:7])
        with pytest.raises(StorageError, match="level.col"):
            DocumentStore.open(persisted_path(tmp_path))

    def test_header_bit_flip(self, saved_engine, tmp_path):
        """Flipping bits in the header (magic / count) is always caught,
        for both backends, without reading the payload."""
        target = self._store_file(tmp_path, "kind.col")
        raw = bytearray(target.read_bytes())
        raw[1] ^= 0xFF                       # magic
        target.write_bytes(bytes(raw))
        for backend in ("mmap", "ram"):
            with pytest.raises(StorageError, match="kind.col"):
                DocumentStore.open(persisted_path(tmp_path), backend=backend)

    def test_count_bit_flip(self, saved_engine, tmp_path):
        target = self._store_file(tmp_path, "name_id.col")
        raw = bytearray(target.read_bytes())
        raw[8] ^= 0x01                       # low byte of the tuple count
        target.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="name_id.col"):
            DocumentStore.open(persisted_path(tmp_path))

    def test_payload_bit_flip_caught_by_crc(self, saved_engine, tmp_path):
        """A payload flip keeps the structure intact; verify=True (the RAM
        default) catches it via the catalog CRC."""
        target = self._store_file(tmp_path, "frag.col")
        raw = bytearray(target.read_bytes())
        raw[-3] ^= 0x10
        target.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="frag.col"):
            DocumentStore.open(persisted_path(tmp_path), backend="ram")
        # opt-in verification catches it on the mmap path too
        with pytest.raises(StorageError, match="frag.col"):
            DocumentStore.open(persisted_path(tmp_path), verify=True)

    def test_heap_offset_flip_fails_cleanly_at_access(self, saved_engine,
                                                      tmp_path):
        """Without CRC verification a flipped heap *offset* must still never
        return garbage: the bounds check fires at access time."""
        import struct

        target = self._store_file(tmp_path, "value.col")
        raw = bytearray(target.read_bytes())
        header_size = struct.calcsize("<4sHBBQQ")
        # first heap entry with a real payload: push its offset far outside
        count = struct.unpack_from("<Q", raw, 8)[0]
        for index in range(count):
            base = header_size + 16 * index
            offset, length = struct.unpack_from("<qq", raw, base)
            if length > 0:
                struct.pack_into("<qq", raw, base, 1 << 40, length)
                break
        target.write_bytes(bytes(raw))
        store = DocumentStore.open(persisted_path(tmp_path), backend="mmap",
                                   verify=False)
        container = store.get("auction.xml")
        with pytest.raises(StorageError, match="value.col"):
            for index in range(len(container.value)):
                container.value[index]
        store.close()

    def test_missing_column_file(self, saved_engine, tmp_path):
        self._store_file(tmp_path, "attr_owner.col").unlink()
        with pytest.raises(StorageError, match="attr_owner.col"):
            DocumentStore.open(persisted_path(tmp_path))

    def test_catalog_not_json(self, saved_engine, tmp_path):
        (persisted_path(tmp_path) / "catalog.json").write_text("{nope")
        with pytest.raises(StorageError, match="catalog.json"):
            DocumentStore.open(persisted_path(tmp_path))

    def test_catalog_format_mismatch(self, saved_engine, tmp_path):
        catalog_path = persisted_path(tmp_path) / "catalog.json"
        catalog = json.loads(catalog_path.read_text())
        catalog["format"] = STORE_FORMAT + 1
        catalog_path.write_text(json.dumps(catalog))
        with pytest.raises(StorageError, match="format"):
            DocumentStore.open(persisted_path(tmp_path))

    def test_missing_catalog(self, tmp_path):
        with pytest.raises(StorageError, match="catalog"):
            DocumentStore.open(tmp_path / "nowhere")

    def test_column_count_vs_catalog_mismatch(self, saved_engine, tmp_path):
        """A stale column file (right structure, wrong tuple count against
        the catalog) is the torn-write signature after a partial publish."""
        from repro.storage.persist import encode_int_column

        target = self._store_file(tmp_path, "size.col")
        target.write_bytes(encode_int_column([1, 2, 3]))
        with pytest.raises(StorageError, match="size.col"):
            DocumentStore.open(persisted_path(tmp_path))


# --------------------------------------------------------------------------- #
# the string heap and the backend protocol in isolation
# --------------------------------------------------------------------------- #
class TestStringHeap:
    def test_round_trip_with_nones_and_unicode(self):
        values = ["plain", None, "", "smörgåsbord", "a\nb", None, "✓"]
        offsets, blob = encode_string_heap(values)
        from array import array
        entries = array("q")
        entries.frombytes(offsets)
        heap = StringHeapView(entries, blob, "test.col")
        assert heap.tolist() == values
        assert len(heap) == len(values)
        assert heap[3] == "smörgåsbord"
        assert heap[-1] == "✓"
        assert heap[1] is None

    def test_none_sentinel(self):
        offsets, blob = encode_string_heap([None])
        from array import array
        entries = array("q")
        entries.frombytes(offsets)
        assert list(entries) == [0, HEAP_NONE]
        assert blob == b""

    def test_out_of_range_index(self):
        offsets, blob = encode_string_heap(["x"])
        from array import array
        entries = array("q")
        entries.frombytes(offsets)
        heap = StringHeapView(entries, blob, "test.col")
        with pytest.raises(IndexError):
            heap[1]

    def test_truncated_offsets_table_rejected(self):
        from array import array
        with pytest.raises(StorageError, match="truncated"):
            StringHeapView(array("q", [0]), b"", "test.col")

    def test_mmap_backend_unknown_column(self):
        backend = MmapBackend({}, {}, label="store/d0001")
        with pytest.raises(StorageError, match="store/d0001"):
            backend.int_column("size")
        with pytest.raises(StorageError, match="store/d0001"):
            backend.str_column("value")
        backend.close()                        # idempotent on empty
        backend.close()


# --------------------------------------------------------------------------- #
# the page-wise updatable layout stays wired into the persistence flow
# --------------------------------------------------------------------------- #
class TestPagedStructureWiring:
    def test_exported_through_storage_package(self):
        import repro.storage as storage

        assert storage.PagedStructure is not None
        assert "PagedStructure" in storage.__all__
        # the dead page-map record type is gone
        assert not hasattr(storage, "PageMapEntry")

    def test_update_flow_runs_through_pages(self, saved_engine, tmp_path,
                                            monkeypatch):
        """The commit path of the previous test class must actually pass
        through PagedStructure — guard against the updatable layer silently
        bypassing the page-wise layout."""
        from repro.storage.pages import PagedStructure
        from repro import XMLUpdater

        seen = {"count": 0}
        original = PagedStructure.append_page

        def counting(self, *args, **kwargs):
            seen["count"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(PagedStructure, "append_page", counting)
        updater = XMLUpdater(saved_engine, "auction.xml")
        target = updater.select("/site/people")[0]
        updater.insert_last(target, "<person id='pp'/>")
        updater.commit()
        assert seen["count"] > 0
        # ... and the committed state is on disk
        store = DocumentStore.open(persisted_path(tmp_path))
        assert store.version == saved_engine.store.version
        assert store.get("auction.xml").node_count == \
            saved_engine.store.get("auction.xml").node_count
        store.close()
