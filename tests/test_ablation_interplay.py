"""Ablation-switch interplay on the XMark suite.

Every rewrite/optimization switch must be *semantics-preserving*: toggling
any one of them off (and characteristic combinations) has to produce
byte-identical serialized results for all twenty XMark queries.  This is
the safety net that lets the cost-based optimizer reorder join clauses and
move predicates without fear.
"""

import pytest

from repro.xmark import XMARK_QUERIES, xmark_query


REWRITE_FLAGS = ["projection_pushdown", "subplan_sharing",
                 "predicate_pushdown", "cost_based_joins", "wcoj",
                 "codegen"]


def run_serialized(engine, number, options=None):
    engine.reset_transient()
    return engine.query(xmark_query(number), options=options).serialize()


@pytest.fixture(scope="module")
def reference_results(xmark_engine):
    return {number: run_serialized(xmark_engine, number)
            for number in sorted(XMARK_QUERIES)}


@pytest.mark.parametrize("flag", REWRITE_FLAGS)
def test_single_switch_off_preserves_xmark_results(xmark_engine,
                                                   reference_results, flag):
    options = xmark_engine.options.replace(**{flag: False})
    for number in sorted(XMARK_QUERIES):
        assert run_serialized(xmark_engine, number, options) == \
            reference_results[number], f"Q{number} differs with {flag}=False"


def test_all_rewrite_switches_off_preserve_xmark_results(xmark_engine,
                                                         reference_results):
    options = xmark_engine.options.replace(
        **{flag: False for flag in REWRITE_FLAGS})
    for number in sorted(XMARK_QUERIES):
        assert run_serialized(xmark_engine, number, options) == \
            reference_results[number], f"Q{number} differs with all rewrites off"


@pytest.mark.parametrize("pair", [
    ("predicate_pushdown", "cost_based_joins"),
    ("predicate_pushdown", "projection_pushdown"),
    ("cost_based_joins", "subplan_sharing"),
    ("cost_based_joins", "wcoj"),
    ("join_recognition", "wcoj"),
    ("codegen", "step_fusion"),
    ("codegen", "subplan_sharing"),
])
def test_pairwise_switches_off_preserve_xmark_results(xmark_engine,
                                                      reference_results, pair):
    options = xmark_engine.options.replace(**{flag: False for flag in pair})
    for number in sorted(XMARK_QUERIES):
        assert run_serialized(xmark_engine, number, options) == \
            reference_results[number], \
            f"Q{number} differs with {pair} off"


def test_join_recognition_off_preserves_join_queries(xmark_engine,
                                                     reference_results):
    # the joins themselves (Q8-Q12) must agree with the nested-loop plans
    options = xmark_engine.options.replace(join_recognition=False)
    for number in (8, 9, 10, 11, 12):
        assert run_serialized(xmark_engine, number, options) == \
            reference_results[number], f"Q{number} differs without joins"
