"""Unit tests for the dependency-free XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xml.parser import (Comment, EndElement, ProcessingInstruction,
                              StartElement, Text, escape_attribute, escape_text,
                              parse_events, unescape)


def events(text):
    return list(parse_events(text))


class TestBasicParsing:
    def test_single_element(self):
        assert events("<a/>") == [StartElement("a", []), EndElement("a")]

    def test_nested_elements_and_text(self):
        parsed = events("<a><b>hi</b></a>")
        assert parsed == [StartElement("a", []), StartElement("b", []),
                          Text("hi"), EndElement("b"), EndElement("a")]

    def test_attributes_single_and_double_quotes(self):
        parsed = events("""<a x="1" y='two'/>""")
        assert parsed[0] == StartElement("a", [("x", "1"), ("y", "two")])

    def test_attribute_entities_resolved(self):
        parsed = events('<a t="a&amp;b &lt;c&gt;"/>')
        assert parsed[0].attributes == [("t", "a&b <c>")]

    def test_comment_event(self):
        parsed = events("<a><!-- note --></a>")
        assert Comment(" note ") in parsed

    def test_processing_instruction(self):
        parsed = events("<a><?target data?></a>")
        assert ProcessingInstruction("target", "data") in parsed

    def test_xml_declaration_is_skipped(self):
        parsed = events('<?xml version="1.0"?><a/>')
        assert parsed == [StartElement("a", []), EndElement("a")]

    def test_doctype_is_skipped(self):
        parsed = events('<!DOCTYPE site SYSTEM "auction.dtd"><a/>')
        assert parsed[0] == StartElement("a", [])

    def test_cdata_becomes_text(self):
        parsed = events("<a><![CDATA[1 < 2 & 3]]></a>")
        assert Text("1 < 2 & 3") in parsed

    def test_character_references(self):
        parsed = events("<a>&#65;&#x42;</a>")
        assert Text("AB") in parsed


class TestErrors:
    def test_mismatched_end_tag(self):
        with pytest.raises(XMLParseError):
            events("<a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XMLParseError):
            events("<a><b></b>")

    def test_unknown_entity(self):
        with pytest.raises(XMLParseError):
            events("<a>&nope;</a>")

    def test_unterminated_comment(self):
        with pytest.raises(XMLParseError):
            events("<a><!-- oops</a>")

    def test_text_outside_document_element(self):
        with pytest.raises(XMLParseError):
            events("<a/>junk")

    def test_unquoted_attribute(self):
        with pytest.raises(XMLParseError):
            events("<a x=1/>")

    def test_error_carries_location(self):
        with pytest.raises(XMLParseError) as excinfo:
            events("<a>\n<b></c></a>")
        assert excinfo.value.line == 2


class TestEscaping:
    def test_unescape_roundtrip(self):
        assert unescape(escape_text("a<b>&c")) == "a<b>&c"

    def test_escape_attribute_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_unescape_without_entities_is_identity(self):
        assert unescape("plain text") == "plain text"
