"""Engine option ablations: every configuration computes the same answers,
only the physical algorithms (and therefore the trace/counters) differ."""

import pytest

from repro import EngineOptions, MonetXQuery
from repro.relational import capture


QUERIES = [
    "count(//person)",
    'for $p in /site/people/person[@id = "person1"] return $p/name/text()',
    "for $a in /site/open_auctions/open_auction return count($a/bidder)",
    "for $p in /site/people/person "
    "let $t := for $c in /site/closed_auctions/closed_auction "
    "          where $c/buyer/@person = $p/@id return $c "
    "return count($t)",
    "for $x in (3, 1, 2) order by $x return $x",
    "sum(//price)",
    "for $x in (1 to 3, 10 to 12) return $x",
    "for $x in (/site/people/person, /site/regions//item) "
    "return $x/name/text()",
]


class TestAblationsPreserveSemantics:
    @pytest.mark.parametrize("query", QUERIES)
    def test_all_optimizations_off_matches_default(self, engine, all_options_off, query):
        fast = engine.query(query).items
        slow = engine.query(query, options=all_options_off).items
        assert fast == slow

    @pytest.mark.parametrize("flag", ["loop_lifted_child", "loop_lifted_descendant",
                                      "nametest_pushdown", "join_recognition",
                                      "order_optimization", "positional_lookup",
                                      "existential_aggregates",
                                      "projection_pushdown", "subplan_sharing",
                                      "wcoj"])
    def test_single_flag_off_matches_default(self, engine, flag):
        query = QUERIES[3]
        expected = engine.query(query).items
        options = engine.options.replace(**{flag: False})
        assert engine.query(query, options=options).items == expected


class TestAblationsChangeAlgorithms:
    def test_iterative_steps_recorded_when_loop_lifting_disabled(self, engine):
        options = engine.options.replace(loop_lifted_child=False,
                                         loop_lifted_descendant=False,
                                         loop_lifted_other=False,
                                         nametest_pushdown=False)
        with capture() as trace:
            engine.query("for $p in /site/people/person return count($p/name)",
                         options=options)
        assert trace.count("step.iterative") > 0
        assert trace.count("step.loop-lifted") == 0

    def test_loop_lifted_steps_recorded_by_default(self, engine):
        with capture() as trace:
            engine.query("for $p in /site/people/person return count($p/name)",
                         options=engine.options.replace(nametest_pushdown=False))
        assert trace.count("step.loop-lifted") > 0

    def test_pushdown_steps_recorded_when_enabled(self, engine):
        with capture() as trace:
            engine.query("count(//person)")
        assert trace.count("step.pushdown") > 0

    def test_order_optimization_reduces_sorts(self, engine):
        query = ("for $p in /site/people/person "
                 "return count($p/name)")
        with capture() as optimized:
            engine.query(query)
        with capture() as naive:
            engine.query(query, options=engine.options.replace(order_optimization=False))
        assert naive.count("sort.full") > optimized.count("sort.full")
        assert optimized.count("sort.skipped") > 0

    def test_wcoj_strategy_switch(self, engine):
        # three-way value-join clique over the small document: persons,
        # their closed auctions and the items those auctions sold
        query = ("for $p in /site/people/person "
                 "for $c in /site/closed_auctions/closed_auction "
                 "for $i in /site/regions/europe/item "
                 "where $c/buyer/@person = $p/@id "
                 "and $c/itemref/@item = $i/@id "
                 "and $i/@id = $c/itemref/@item "
                 "return $i/name/text()")
        with capture() as generic_trace:
            baseline = engine.query(query).items
        with capture() as pairwise_trace:
            other = engine.query(
                query, options=engine.options.replace(wcoj=False)).items
        assert baseline == other
        assert generic_trace.count("plan.wcoj") > 0
        assert pairwise_trace.count("plan.wcoj") == 0

    def test_existential_strategy_switch(self, engine):
        query = ("for $p in /site/people/person "
                 "let $l := for $i in /site/open_auctions/open_auction/initial "
                 "          where $p/profile/@income > 5000 * exactly-one($i/text()) "
                 "          return $i "
                 "return count($l)")
        with capture() as aggregate_trace:
            baseline = engine.query(query).items
        with capture() as dedup_trace:
            other = engine.query(
                query, options=engine.options.replace(existential_aggregates=False)).items
        assert baseline == other
        assert aggregate_trace.count("existential.aggregate") > 0
        assert dedup_trace.count("existential.aggregate") == 0


class TestEngineBasics:
    def test_options_replace_does_not_mutate(self):
        options = EngineOptions()
        changed = options.replace(join_recognition=False)
        assert options.join_recognition and not changed.join_recognition

    def test_query_result_helpers(self, engine):
        result = engine.query("(1, 2)")
        assert len(result) == 2
        assert result.strings() == ["1", "2"]
        assert result.elapsed_seconds >= 0

    def test_default_context_is_first_document(self):
        mxq = MonetXQuery()
        mxq.load_document_text("<a><b/></a>", name="first.xml")
        mxq.load_document_text("<c/>", name="second.xml")
        assert mxq.query("count(/a/b)").items == [1]
        mxq.set_default_context("second.xml")
        assert mxq.query("count(/c)").items == [1]

    def test_drop_document(self, engine):
        engine.drop_document("auction.xml")
        assert "auction.xml" not in engine.store.names()

    def test_reset_transient_clears_constructed_nodes(self, engine):
        engine.query("<a/>")
        assert engine.transient.node_count > 0
        engine.reset_transient()
        assert engine.transient.node_count == 0
