"""Step-chain fusion: fused and per-step pipelines must be bit-identical.

The fused evaluator (:func:`repro.xquery.steps.axis_step_chain`) threads the
paired ``(iter, pre)`` int arrays of each staircase join straight into the
next one and boxes ``NodeRef`` surrogates only at the chain's end — these
tests pin down that this changes *how* paths run (traces, explain
annotations), never *what* they return, including on the edge cases the
between-steps sort/dedup must get right.
"""

from __future__ import annotations

import pytest

from repro import EngineOptions, MonetXQuery
from repro.relational.explain import capture
from repro.server import SubplanCache
from repro.staircase.axes import Axis, NodeTest
from repro.xquery.steps import _collapse_descendant_steps, axis_step_chain

from conftest import SMALL_XML


FUSED = EngineOptions(step_fusion=True)
PER_STEP = EngineOptions(step_fusion=False)

#: nested same-name elements: descendant-of-descendant chains over this
#: document produce the same node for several context nodes, so the fused
#: pipeline's raw-buffer dedup is load-bearing
NESTED_XML = (
    "<a>"
    "  <b><b><c><d/></c></b><c/></b>"
    "  <b><c><c><d/></c></c></b>"
    "  <d/>"
    "</a>"
)


def run_both(engine: MonetXQuery, query: str) -> tuple[str, str]:
    return (engine.query(query, options=FUSED).serialize(),
            engine.query(query, options=PER_STEP).serialize())


class TestFusedBitIdentity:
    """Handcrafted edge cases: fused == per-step, byte for byte."""

    EDGE_QUERIES = [
        # empty intermediate steps: the chain must survive an empty context
        # between two staircase joins
        "/site/nonexistent/person",
        "count(//nothing//item)",
        "/site/people/absent/name/text()",
        # single-context dense window: one outermost context per region, the
        # descendant scan emits one contiguous pre window
        "/site//person",
        "count(/site//text())",
        # deep mixed chains
        "/site/open_auctions/open_auction/bidder/increase/text()",
        "count(//open_auctions//bidder//increase)",
        # attribute axis ends a chain
        "//person/@id",
        "/site//itemref/@item",
        "count(//interest/@category)",
        # wildcard and kind tests inside the chain
        "/site/*/person/name",
        "//europe/*/name/text()",
    ]

    @pytest.mark.parametrize("query", EDGE_QUERIES)
    def test_edge_case_chains(self, engine, query):
        fused, per_step = run_both(engine, query)
        assert fused == per_step

    @pytest.mark.parametrize("query", [
        # duplicate-producing descendant-of-descendant chains: nested b/c
        # elements make several context nodes own the same result node
        "//b//c",
        "//b//c//d",
        "count(//b//c)",
        "//b/b/c",
        "//c//d",
        "count(//b//c//d)",
    ])
    def test_duplicate_producing_descendant_chains(self, query):
        mxq = MonetXQuery()
        mxq.load_document_text(NESTED_XML, name="nested.xml")
        fused, per_step = run_both(mxq, query)
        assert fused == per_step

    def test_chains_inside_flwor_iterations(self, engine):
        query = ("for $a in /site/open_auctions/open_auction "
                 "return count($a/bidder/increase)")
        fused, per_step = run_both(engine, query)
        assert fused == per_step

    def test_predicates_split_but_do_not_break_paths(self, engine):
        # the predicate-bearing step is excluded from fusion; the segments
        # around it still fuse and the result must not change
        query = "/site/people/person[1]/profile/interest/@category"
        fused, per_step = run_both(engine, query)
        assert fused == per_step


class TestFusionTraces:
    """Trace-level regression: what fusion must (not) execute."""

    def test_count_only_chain_never_boxes_a_surrogate(self, xmark_engine):
        """XMark Q6 shape: the fused count-only pipeline is surrogate-free
        end to end — one chain-fused entry, dead-item pruning at the end,
        and *no* per-step surrogate boxing trace at all."""
        query = "count(/site/regions//item)"
        with capture() as fused_trace:
            fused = xmark_engine.query(query, options=FUSED).items
        with capture() as per_step_trace:
            per_step = xmark_engine.query(query, options=PER_STEP).items
        assert fused == per_step

        assert fused_trace.count("step.chain-fused") >= 1
        assert fused_trace.count("step.item-pruned") >= 1
        assert fused_trace.count("step.materialize") == 0, \
            "a fused count-only chain must never box a NodeRef"

        assert per_step_trace.count("step.chain-fused") == 0
        assert per_step_trace.count("step.materialize") >= 1, \
            "the per-step baseline boxes every intermediate step"

    def test_materializing_chain_boxes_exactly_once(self, xmark_engine):
        query = "/site/open_auctions/open_auction/bidder/increase"
        with capture() as fused_trace:
            xmark_engine.query(query, options=FUSED)
        assert fused_trace.count("step.chain-fused") == 1
        assert fused_trace.count("step.materialize") == 1
        with capture() as per_step_trace:
            xmark_engine.query(query, options=PER_STEP)
        assert per_step_trace.count("step.materialize") >= 4

    def test_between_steps_sort_runs_on_raw_buffers(self, engine):
        with capture() as trace:
            engine.query("/site/people/person/name", options=FUSED)
        assert trace.count("step.chain-fused") >= 1
        assert trace.count("sort.int-pairs") >= 1

    def test_fusion_reported_in_explain(self, engine):
        prepared = engine.prepare("count(/site/regions/europe/item)",
                                  options=FUSED)
        assert "(fused" in prepared.explain()
        assert prepared.plan.report.fired("step-fusion")

    def test_no_fusion_annotations_when_disabled(self, engine):
        prepared = engine.prepare("count(/site/regions/europe/item)",
                                  options=PER_STEP)
        assert "(fused" not in prepared.explain()
        assert not prepared.plan.report.fired("step-fusion")


class TestCacheBoundaries:
    """Chains must not fuse across cross-query-cacheable nodes when a
    subplan cache is attached — their materialised item sequences are
    shared with other queries and must keep populating their slots."""

    QUERY = "/site/people/person/name"

    def test_no_fusion_across_attached_cache(self):
        mxq = MonetXQuery(subplan_cache=SubplanCache(admission_threshold=1))
        mxq.load_document_text(SMALL_XML, name="auction.xml")
        expected = mxq.query(self.QUERY, options=PER_STEP).serialize()
        with capture() as trace:
            first = mxq.query(self.QUERY, options=FUSED).serialize()
        # every step of the absolute path is cache-marked: the chain is
        # trimmed at each boundary and evaluated per step
        assert trace.count("step.chain-fused") == 0
        assert first == expected
        # the prefix slots were populated and get served on the next query
        with capture() as trace:
            second = mxq.query(self.QUERY, options=FUSED).serialize()
        assert second == expected
        assert trace.count("plan.subplan.hit") >= 1

    def test_fusion_resumes_without_attached_cache(self):
        mxq = MonetXQuery()
        mxq.load_document_text(SMALL_XML, name="auction.xml")
        with capture() as trace:
            mxq.query(self.QUERY, options=FUSED)
        # no cache is attached, so the cacheable marks are not a boundary
        assert trace.count("step.chain-fused") == 1

    def test_cache_boundary_results_match_cacheless_results(self):
        cached = MonetXQuery(subplan_cache=SubplanCache(admission_threshold=1))
        cached.load_document_text(SMALL_XML, name="auction.xml")
        plain = MonetXQuery()
        plain.load_document_text(SMALL_XML, name="auction.xml")
        for query in ["/site/people/person/name", "count(//bidder/increase)",
                      "//person/@id"]:
            for _ in range(2):          # second pass is served from the cache
                assert cached.query(query, options=FUSED).serialize() \
                    == plain.query(query, options=FUSED).serialize(), query


class TestSharedSubplanBoundaries:
    def test_shared_prefix_stays_memoised(self, engine):
        """A path prefix referenced twice is memoised (CSE); the chain must
        not absorb it, and both consumers still agree with the baseline."""
        query = "count(//person/name) + count(//person)"
        with capture() as trace:
            fused = engine.query(query, options=FUSED).items
        per_step = engine.query(query, options=PER_STEP).items
        assert fused == per_step
        assert trace.count("plan.cse.reuse") >= 1
        assert trace.count("step.chain-fused") >= 1


class TestChainEvaluatorContracts:
    def test_chain_requires_two_steps(self):
        from repro.xquery.sequences import sequence_table
        with pytest.raises(ValueError):
            axis_step_chain(sequence_table([]),
                            [(Axis.CHILD, NodeTest(kind="element"))])

    def test_attribute_axis_only_ends_a_chain(self):
        from repro.xquery.sequences import sequence_table
        with pytest.raises(ValueError):
            axis_step_chain(sequence_table([]), [
                (Axis.ATTRIBUTE, NodeTest(kind="attribute")),
                (Axis.CHILD, NodeTest(kind="element")),
            ])

    def test_descendant_collapse_rewrites_slash_slash_shapes(self):
        dos = (Axis.DESCENDANT_OR_SELF, NodeTest(kind="node"))
        child_b = (Axis.CHILD, NodeTest(kind="element", name="b"))
        child_c = (Axis.CHILD, NodeTest(kind="element", name="c"))
        collapsed = _collapse_descendant_steps([dos, child_b, dos, child_c])
        assert collapsed == [
            (Axis.DESCENDANT, NodeTest(kind="element", name="b")),
            (Axis.DESCENDANT, NodeTest(kind="element", name="c")),
        ]
        # a dos step not followed by a child step is left alone
        assert _collapse_descendant_steps([child_b, dos]) == [child_b, dos]
