"""Concurrent serving — thread scaling and the cross-query subplan cache.

The north-star workload is heavy *repeated* XMark traffic from many
clients.  Two shapes are measured:

* **throughput vs. worker threads** — the same repeated query mix served
  through :class:`QueryServer` pools of different sizes.  The engine is
  pure Python, so the GIL bounds CPU parallelism; the interesting result
  is that the shared caches and the RW-locked store add no contention
  collapse as threads grow (reported as queries/second per pool size).
* **cross-query materialized subplan cache** — the same mix with and
  without the shared :class:`SubplanCache`.  Path-heavy queries (Q14's
  ``/site//item``, Q19, Q20) are dominated by loop-invariant absolute
  paths, so the cached configuration wins by the full navigation share
  after the first traversal; the assertion pins reported hit counts > 0.
* **throughput vs. worker processes** — the same mix through the
  shared-memory process pool (``QueryServer(processes=N)``), which does
  break the GIL bound: one physical copy of the shredded columns, N
  interpreters.  On a 4+-core machine the pool must clear 3x the
  single-thread throughput; on smaller machines the speedup is reported
  but not asserted (there is nothing to parallelize onto).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import MonetXQuery
from repro.server import QueryServer
from repro.xmark import XMARK_QUERIES


#: a hot-traffic mix: selective point query, path-heavy scans, a join
QUERY_MIX = [1, 6, 13, 14, 19, 20]
REPEATS = 4


def _serve_mix(server: QueryServer, repeats: int) -> int:
    futures = []
    for _ in range(repeats):
        for number in QUERY_MIX:
            futures.append(server.submit(XMARK_QUERIES[number]))
    return sum(len(future.result()) for future in futures)


@pytest.mark.parametrize("threads", [1, 2, 4, 8])
def test_throughput_scaling_with_threads(benchmark, xmark_document_text,
                                         threads):
    server = QueryServer(threads=threads)
    server.load_document_text(xmark_document_text, name="auction.xml")
    _serve_mix(server, 1)                       # warm both shared caches

    result = benchmark.pedantic(_serve_mix, args=(server, REPEATS),
                                rounds=1, iterations=1, warmup_rounds=0)

    stats = server.stats()
    benchmark.extra_info["figure"] = "concurrent-serving"
    benchmark.extra_info["threads"] = threads
    benchmark.extra_info["queries"] = REPEATS * len(QUERY_MIX)
    benchmark.extra_info["result_size"] = result
    benchmark.extra_info["plan_hits"] = stats.plan_cache.hits
    benchmark.extra_info["subplan_hits"] = stats.subplan_cache.hits
    assert stats.plan_cache.hits > 0
    server.close()


@pytest.mark.parametrize("processes", [1, 2, 4])
def test_throughput_scaling_with_processes(benchmark, xmark_document_text,
                                           processes):
    server = QueryServer(processes=processes)
    server.load_document_text(xmark_document_text, name="auction.xml")
    _serve_mix(server, 1)           # fork workers, attach, warm their caches

    result = benchmark.pedantic(_serve_mix, args=(server, REPEATS),
                                rounds=1, iterations=1, warmup_rounds=0)

    stats = server.stats()
    benchmark.extra_info["figure"] = "process-serving"
    benchmark.extra_info["processes"] = processes
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["queries"] = REPEATS * len(QUERY_MIX)
    benchmark.extra_info["result_size"] = result
    benchmark.extra_info["generation"] = stats.generation
    assert stats.mode == "processes"
    assert stats.queries_served >= REPEATS * len(QUERY_MIX)
    server.close()


def test_process_pool_speedup_over_single_thread(xmark_document_text):
    """The acceptance run: a 4-worker pool vs. single-thread serving on
    the same mix.  The 3x floor only holds where 4 workers have cores to
    run on, so it is asserted on 4+-core machines and reported otherwise
    (the bit-identity guard below runs everywhere regardless)."""
    def timed(server):
        server.load_document_text(xmark_document_text, name="auction.xml")
        _serve_mix(server, 1)
        start = time.perf_counter()
        _serve_mix(server, REPEATS)
        return time.perf_counter() - start

    with QueryServer(threads=1) as single:
        single_thread = timed(single)
    with QueryServer(processes=4) as pooled:
        process_pool = timed(pooled)

    speedup = single_thread / process_pool
    cores = os.cpu_count() or 1
    print(f"\nprocess-pool speedup over single-thread: {speedup:.2f}x "
          f"({cores} cores)")
    from .conftest import write_bench_json
    write_bench_json("bench_concurrent_serving", {"process_pool": {
        "single_thread_s": single_thread,
        "process_pool_s": process_pool,
        "speedup": speedup,
        "workers": 4,
        "cpu_count": cores,
        "queries": REPEATS * len(QUERY_MIX),
        "asserted": cores >= 4,
    }})
    if cores >= 4:
        assert speedup >= 3.0, (
            f"process pool managed only {speedup:.2f}x over single-thread "
            f"on a {cores}-core machine (floor: 3x)")


def test_results_identical_threads_vs_processes(xmark_document_text):
    """Guard for the process benchmark: thread mode and process mode
    serve bit-identical sequences for the whole mix."""
    with QueryServer(threads=2) as threaded, \
            QueryServer(processes=2) as pooled:
        threaded.load_document_text(xmark_document_text, name="auction.xml")
        pooled.load_document_text(xmark_document_text, name="auction.xml")
        for number in QUERY_MIX:
            text = XMARK_QUERIES[number]
            assert pooled.submit(text).result().serialize() == \
                threaded.submit(text).result().serialize(), f"Q{number}"


@pytest.mark.parametrize("mode", ["subplan-cache", "no-subplan-cache"])
def test_cross_query_subplan_cache_speedup(benchmark, xmark_document_text,
                                           mode):
    if mode == "subplan-cache":
        server = QueryServer(threads=2)
    else:
        server = QueryServer(threads=2, subplan_cache_size=0)
    server.load_document_text(xmark_document_text, name="auction.xml")
    _serve_mix(server, 1)                       # warm plan (+ subplan) caches

    result = benchmark.pedantic(_serve_mix, args=(server, REPEATS),
                                rounds=1, iterations=1, warmup_rounds=0)

    stats = server.stats()
    benchmark.extra_info["figure"] = "subplan-cache"
    benchmark.extra_info["config"] = mode
    benchmark.extra_info["result_size"] = result
    benchmark.extra_info["subplan_hits"] = stats.subplan_cache.hits
    benchmark.extra_info["subplan_misses"] = stats.subplan_cache.misses
    if mode == "subplan-cache":
        # the acceptance criterion: repeated traffic is served from the
        # materialized subplan cache (reported hit counts > 0)
        assert stats.subplan_cache.hits > 0
    else:
        assert server.subplan_cache is None
    server.close()


def test_results_identical_with_and_without_subplan_cache(
        xmark_document_text):
    """Guard for the benchmark itself: both configurations return the
    same sequences for the whole mix."""
    cached = QueryServer(threads=2)
    plain = MonetXQuery()
    cached.load_document_text(xmark_document_text, name="auction.xml")
    plain.load_document_text(xmark_document_text, name="auction.xml")
    for number in QUERY_MIX:
        text = XMARK_QUERIES[number]
        assert cached.execute(text).serialize() == \
            plain.query(text).serialize(), f"Q{number}"
    cached.close()
