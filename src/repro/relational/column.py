"""Columns: the unit of storage of the column-at-a-time engine.

MonetDB stores every attribute as a Binary Association Table (BAT) whose
head is a dense, void (virtual) object identifier and whose tail is the
attribute value.  Because the head is always dense, a BAT degenerates to a
plain array.  We mirror that: a :class:`Column` is a plain Python list of
values plus the :class:`~repro.relational.properties.ColumnProps` the
peephole optimizer tracks.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from ..errors import ColumnTypeError
from .properties import ColumnProps, infer_column_props


class Column:
    """A named, materialised column of values.

    The column does not enforce a static type: like the paper's polymorphic
    ``item`` column it may mix integers, strings, booleans and node
    surrogates.  Property inference is optional (``infer=True``) because it
    costs a scan; operators that know the properties of their output set them
    analytically instead.
    """

    __slots__ = ("name", "values", "props")

    def __init__(self, name: str, values: Sequence[Any] | None = None, *,
                 props: ColumnProps | None = None, infer: bool = False):
        self.name = name
        self.values: list[Any] = list(values) if values is not None else []
        if props is not None:
            self.props = props
        elif infer:
            self.props = infer_column_props(self.values)
        else:
            self.props = ColumnProps()

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and self.values == other.values

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        preview = ", ".join(repr(v) for v in self.values[:6])
        if len(self.values) > 6:
            preview += ", ..."
        return f"Column({self.name!r}, [{preview}], props={self.props.describe()})"

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def dense(cls, name: str, count: int, base: int = 0) -> "Column":
        """Create a dense sequence column ``base, base+1, ..``."""
        props = ColumnProps(dense=True, dense_base=base, key=True)
        return cls(name, list(range(base, base + count)), props=props)

    @classmethod
    def constant(cls, name: str, value: Any, count: int) -> "Column":
        """Create a constant column repeating ``value`` ``count`` times."""
        props = ColumnProps(const=True, const_value=value, key=count <= 1)
        return cls(name, [value] * count, props=props)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def renamed(self, name: str) -> "Column":
        """Return a copy of the column under a different name."""
        return Column(name, self.values, props=self.props.copy())

    def take(self, positions: Iterable[int]) -> "Column":
        """Positional selection: new column with ``values[p] for p in positions``.

        This is MonetDB's ``fetchjoin`` / positional lookup primitive; it is
        only valid because the implicit row id of a materialised column is
        dense.
        """
        values = self.values
        try:
            picked = [values[p] for p in positions]
        except IndexError as exc:
            raise ColumnTypeError(
                f"positional lookup out of range on column {self.name!r}") from exc
        props = ColumnProps()
        if self.props.const:
            props.const = True
            props.const_value = self.props.const_value
        return Column(self.name, picked, props=props)

    def append_column(self, other: "Column") -> None:
        """Destructively append the values of ``other`` (same name required)."""
        if other.name != self.name:
            raise ColumnTypeError(
                f"cannot append column {other.name!r} to column {self.name!r}")
        self.values.extend(other.values)
        self.props = ColumnProps()

    def refresh_props(self) -> ColumnProps:
        """Re-infer the properties from the current values."""
        self.props = infer_column_props(self.values)
        return self.props
