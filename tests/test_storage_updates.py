"""Page-wise updatable storage: swizzling, structural updates, delta ledger."""

import pytest

from repro.errors import StorageError, UpdateError
from repro.storage import (PagedStructure, SizeDeltaLedger, TransactionManager,
                           UpdatableDocument)
from repro.xml import DocumentStore, serialize_subtree, shred_document


def shred(xml, name="doc.xml"):
    return shred_document(xml, name, DocumentStore())


class TestPagedStructure:
    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(StorageError):
            PagedStructure(page_size=48)

    def test_swizzle_roundtrip_after_splice(self):
        pages = PagedStructure(page_size=8)
        pages.append_page()
        pages.append_page()
        # splice a page between the two existing ones
        pages.append_page(at_logical_position=1)
        for pre in range(pages.pre_count):
            assert pages.rid_to_pre(pages.pre_to_rid(pre)) == pre

    def test_new_pages_are_appended_to_rid_table(self):
        pages = PagedStructure(page_size=4)
        pages.append_page()
        first_count = pages.rid_count
        pages.append_page(at_logical_position=0)
        assert pages.rid_count == first_count + 4
        # the spliced page is logically first but physically last
        assert pages.page_map[0] == 1

    def test_unused_tuples_record_free_run_length(self):
        pages = PagedStructure(page_size=4)
        pages.append_page()
        pages.set(0, size=0, level=0, kind=1, name_id=0, value=None)
        pages.compact_free_runs()
        assert pages.is_unused(1)
        assert pages.get(1)[0] == 2      # two more unused tuples follow

    def test_out_of_range_pre_raises(self):
        pages = PagedStructure(page_size=4)
        pages.append_page()
        with pytest.raises(StorageError):
            pages.pre_to_rid(100)


class TestUpdatableDocument:
    def roundtrip(self, updatable, original):
        return serialize_subtree(updatable.to_container(), 0) == \
            serialize_subtree(original, 0)

    def test_load_preserves_document(self):
        doc = shred("<a><b>x</b><c><d/></c></a>")
        updatable = UpdatableDocument.from_container(doc, page_size=8)
        assert self.roundtrip(updatable, doc)

    def test_insert_last_child(self):
        doc = shred("<a><b/><c/></a>")
        fragment = shred("<k><l/></k>", "frag.xml")
        updatable = UpdatableDocument.from_container(doc, page_size=8)
        updatable.insert_subtree(2, fragment, 1)        # under <b>
        result = serialize_subtree(updatable.to_container(), 0)
        assert result == "<a><b><k><l/></k></b><c/></a>"

    def test_insert_first_child(self):
        doc = shred("<a><b><x/></b></a>")
        fragment = shred("<k/>", "frag.xml")
        updatable = UpdatableDocument.from_container(doc, page_size=8)
        updatable.insert_subtree(2, fragment, 1, as_first_child=True)
        result = serialize_subtree(updatable.to_container(), 0)
        assert result == "<a><b><k/><x/></b></a>"

    def test_insert_updates_ancestor_sizes(self):
        doc = shred("<a><b/><c/></a>")
        fragment = shred("<k><l/><m/></k>", "frag.xml")
        updatable = UpdatableDocument.from_container(doc, page_size=16)
        updatable.insert_subtree(2, fragment, 1)
        container = updatable.to_container()
        # <a> now spans b, k, l, m, c
        a_pre = 1
        assert container.size[a_pre] == 5
        assert container.size[0] == 6

    def test_insert_keeps_structural_invariants(self):
        doc = shred("<a><b><c/></b><d><e/><f/></d></a>")
        fragment = shred("<x><y/><z/></x>", "frag.xml")
        updatable = UpdatableDocument.from_container(doc, page_size=8,
                                                     fill_factor=0.5)
        updatable.insert_subtree(4, fragment, 1)        # under <d>
        container = updatable.to_container()
        total = container.node_count
        for pre in range(total):
            assert 0 <= container.size[pre] <= total - pre - 1
            for descendant in container.descendants_pre(pre):
                assert container.level[descendant] > container.level[pre]

    def test_large_insert_appends_pages_only(self):
        doc = shred("<a>" + "<b/>" * 10 + "</a>")
        fragment = shred("<k>" + "<l/>" * 20 + "</k>", "frag.xml")
        updatable = UpdatableDocument.from_container(doc, page_size=8)
        pages_before = updatable.pages.page_count
        updatable.insert_subtree(1, fragment, 1)
        assert updatable.stats.pages_appended >= 1
        assert updatable.pages.page_count > pages_before
        assert updatable.node_count == doc.node_count + 21

    def test_insert_touches_constant_pages(self):
        """The paper's claim: an insert writes O(1) logical pages (plus the
        volume of the inserted subtree itself)."""
        doc = shred("<a>" + "<b><c/></b>" * 50 + "</a>")
        fragment = shred("<k/>", "frag.xml")
        updatable = UpdatableDocument.from_container(doc, page_size=16,
                                                     fill_factor=0.75)
        updatable.insert_subtree(5, fragment, 1)
        assert updatable.stats.pages_touched <= 2

    def test_delete_leaves_unused_tuples(self):
        doc = shred("<a><b><c/><d/></b><e/></a>")
        updatable = UpdatableDocument.from_container(doc, page_size=8)
        before_rids = updatable.pages.rid_count
        updatable.delete_subtree(2)                     # delete <b> subtree
        assert serialize_subtree(updatable.to_container(), 0) == "<a><e/></a>"
        assert updatable.pages.rid_count == before_rids  # nothing shifted
        assert updatable.stats.tuples_marked_unused == 3

    def test_delete_then_insert_reuses_space(self):
        doc = shred("<a><b/><c/><d/></a>")
        updatable = UpdatableDocument.from_container(doc, page_size=8)
        updatable.delete_subtree(2)
        fragment = shred("<n/>", "frag.xml")
        updatable.insert_subtree(0, fragment, 1)
        assert updatable.stats.pages_appended == 0

    def test_value_update(self):
        doc = shred("<a><b>old</b></a>")
        updatable = UpdatableDocument.from_container(doc, page_size=8)
        updatable.replace_value(3, "new")
        assert serialize_subtree(updatable.to_container(), 0) == "<a><b>new</b></a>"

    def test_value_update_on_element_raises(self):
        doc = shred("<a><b>x</b></a>")
        updatable = UpdatableDocument.from_container(doc, page_size=8)
        with pytest.raises(UpdateError):
            updatable.replace_value(1, "nope")

    def test_set_and_delete_attribute(self):
        doc = shred('<a><b x="1"/></a>')
        updatable = UpdatableDocument.from_container(doc, page_size=8)
        updatable.set_attribute(2, "x", "9")
        updatable.set_attribute(2, "y", "2")
        container = updatable.to_container()
        assert serialize_subtree(container, 0) == '<a><b x="9" y="2"/></a>'
        updatable.delete_attribute(2, "x")
        assert serialize_subtree(updatable.to_container(), 0) == '<a><b y="2"/></a>'

    def test_dense_pre_out_of_range(self):
        doc = shred("<a/>")
        updatable = UpdatableDocument.from_container(doc)
        with pytest.raises(UpdateError):
            updatable.dense_to_slot(99)


class TestSizeDeltaLedger:
    def test_commit_and_totals(self):
        ledger = SizeDeltaLedger()
        ledger.record(7, +3)
        ledger.record(7, -1)
        assert ledger.pending_delta(7) == 2
        ledger.commit()
        assert ledger.pending == []
        assert ledger.total_committed_delta(7) == 2

    def test_rollback_discards(self):
        ledger = SizeDeltaLedger()
        ledger.record(1, 5)
        ledger.rollback()
        assert ledger.pending_delta(1) == 0
        assert ledger.total_committed_delta(1) == 0

    def test_interleaved_transactions_converge(self):
        """Two transactions updating the same ancestor's size commit in either
        order without conflicting (the root-lock avoidance of Section 5.2)."""
        manager = TransactionManager({0: 100})
        manager.begin("t1")
        manager.begin("t2")
        manager.add_delta("t1", 0, +3)
        manager.add_delta("t2", 0, -1)
        manager.commit("t2")
        manager.commit("t1")
        assert manager.size(0) == 102

    def test_transaction_rollback(self):
        manager = TransactionManager({0: 10})
        manager.begin("t1")
        manager.add_delta("t1", 0, 5)
        manager.rollback("t1")
        assert manager.size(0) == 10
