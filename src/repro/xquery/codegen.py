"""Plan-to-Python codegen: specialized executor closures per plan operator.

The interpreting executor (:mod:`repro.xquery.compiler`) walks the optimized
DAG node-by-node on *every* execution: per node a ``getattr`` dispatch, a
re-unpacking of the same ``PlanNode`` params, re-derivation of the same
static decisions (need_pos/need_item, join schedules, fused chains).  For
plans served thousands of times from the plan cache this is pure overhead —
the paper's whole point is that the hot path should run as tight loops over
columns, not per-node interpretation.

This module compiles an :class:`~repro.relational.rewrites.
OptimizedModulePlan` **once at prepare time** into one specialized Python
closure per covered operator (closure composition — the approach
DevilsDatabase takes for value expressions, one level up):

* every static decision is resolved at codegen time: operator params,
  comparison operators and strategies, need_pos/need_item column
  requirements, join schedules and estimates, fused-chain specs (including
  positional ``[k]``/``[last()]`` predicates), builtin function lookups,
* constant operands of arithmetic / comparisons / logic skip the
  ``lift_constant`` table churn entirely (their per-iteration values and
  effective boolean values are precomputed),
* the subplan-cache and CSE-memoisation wrappers of the interpreter's
  ``compile()`` entry point are baked into each closure, so cache
  semantics are bit-identical,
* anything codegen does not cover (node constructors, user functions —
  per-node ``codegen_fallbacks`` marking from the rewrite layer) delegates
  to the interpreter for its own subtree only; covered children of an
  interpreted parent still execute compiled, because the interpreter's
  ``compile()`` consults the compiled-closure table first.

Each closure has the signature ``fn(rt, loop, env) -> Table`` where ``rt``
is the per-execution :class:`~repro.xquery.compiler.LoopLiftingCompiler`
(carrying the run-scoped state: memo tables, staircase stats, the engine
view).  The :class:`CompiledProgram` itself is immutable and shared — it is
cached on :class:`~repro.xquery.engine.PreparedQuery` next to the plan, so
plan-cache keying (query + options + store version) invalidates both
together, and process-pool workers rebuild it cheaply in their warm
per-generation engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import XQueryRuntimeError, XQueryTypeError, XQueryUnsupportedError
from ..relational import explain
from ..relational import operators as ops
from ..relational.plan import PlanNode
from ..relational.rewrites import (OptimizedModulePlan, flatten_conjuncts,
                                   positional_predicate_spec)
from ..relational.sorting import sort
from ..staircase.axes import NodeTest
from ..xml.document import NodeRef
from . import functions
from .joins import existential_compare
from .sequences import (back_map, empty_sequence, for_binding,
                        from_iter_items, items_by_iteration, lift_constant,
                        lift_environment, lift_items, make_loop,
                        restrict_sequence, singleton_per_iter)
from .steps import StepOptions, axis_step, axis_step_chain
from .types import atomize, effective_boolean_value, to_number

#: operators that get their own generated closure; ``for``/``let``/
#: ``orderspec`` are codegen-covered but structural — they are consumed
#: inline by the enclosing ``flwor``/``quantified`` closure
_GENERATED = frozenset({
    "const", "empty", "var", "context", "root", "seq", "range", "arith",
    "unary", "cmp-value", "cmp-general", "and", "or", "if", "flwor",
    "quantified", "step", "filter", "call",
})

#: argless builtins that consume the implicit context item
_CONTEXT_BUILTINS = ("string", "data", "number", "name", "local-name")


@dataclass(frozen=True)
class CompiledProgram:
    """The compiled form of one optimized plan: closures keyed by node id.

    Shared between executions (and threads): the closures close only over
    static plan facts; all run-scoped state lives on the ``rt`` argument.
    """

    by_id: dict[int, Callable] = field(repr=False)
    #: node id -> reason the subtree stays interpreted (from the rewrite
    #: layer's coverage marking)
    fallbacks: dict[int, str] = field(repr=False)
    compiled_count: int = 0


def compile_plan(optimized: OptimizedModulePlan, options: Any
                 ) -> CompiledProgram:
    """Compile every covered operator of an optimized plan to a closure."""
    builder = _ClosureBuilder(optimized, options)
    for root in optimized.roots():
        for node in root.walk():
            if node.id in optimized.codegen_nodes \
                    and node.kind in _GENERATED:
                builder.closure(node)
    return CompiledProgram(by_id=builder.by_id,
                           fallbacks=dict(optimized.codegen_fallbacks),
                           compiled_count=len(builder.by_id))


def _singleton_values(table) -> dict[int, Any]:
    """First item per iteration (the singleton-value view of a sequence)."""
    values: dict[int, Any] = {}
    for iteration, item in zip(table.col("iter"), table.col("item")):
        values.setdefault(iteration, item)
    return values


class _ClosureBuilder:
    """Walks the plan DAG once, emitting one closure per covered node."""

    def __init__(self, plan: OptimizedModulePlan, options: Any):
        self.plan = plan
        self.options = options
        self.by_id: dict[int, Callable] = {}
        self._delegates: dict[int, Callable] = {}
        # every option consulted per-node by the interpreter, resolved once
        self.order_opt = options.order_optimization
        self.step_fusion = getattr(options, "step_fusion", True)
        self.existential_strategy = "auto" \
            if options.existential_aggregates else "dedup"
        self.step_options = StepOptions(
            loop_lifted_child=options.loop_lifted_child,
            loop_lifted_descendant=options.loop_lifted_descendant,
            loop_lifted_other=options.loop_lifted_other,
            nametest_pushdown=options.nametest_pushdown,
        )
        self.typed_columns = getattr(options, "typed_columns", True)

    # ------------------------------------------------------------------ #
    # closure lookup / wrapping
    # ------------------------------------------------------------------ #
    def closure(self, node: PlanNode) -> Callable:
        """The executable closure of a node: generated + wrapped when the
        coverage analysis marked it, an interpreter delegate otherwise."""
        fn = self.by_id.get(node.id)
        if fn is not None:
            return fn
        fn = self._delegates.get(node.id)
        if fn is not None:
            return fn
        if node.id in self.plan.codegen_nodes and node.kind in _GENERATED:
            generate = getattr(self, "_gen_" + node.kind.replace("-", "_"))
            fn = self._wrap(node, generate(node))
            self.by_id[node.id] = fn
            return fn

        def delegate(rt, loop, env, node=node):
            return rt.compile(node, loop, env)
        self._delegates[node.id] = delegate
        return delegate

    def _wrap(self, node: PlanNode, raw: Callable) -> Callable:
        """Bake the interpreter ``compile()`` entry-point semantics into a
        closure: the cross-query subplan-cache consultation, then the
        shared-subplan (CSE) memoisation.  Nodes with neither stay raw."""
        fingerprint = self.plan.cache_keys.get(node.id)
        shared = node.id in self.plan.shared \
            and node.id not in self.plan.impure
        if fingerprint is None and not shared:
            return raw
        kind = node.kind

        def wrapped(rt, loop, env, node=node, fingerprint=fingerprint,
                    shared=shared, raw=raw, kind=kind):
            if fingerprint is not None and rt._subplan_cache is not None:
                materialized = rt._materialized_subplan(
                    node, fingerprint, loop, env, evaluate=raw)
                if materialized is not None:
                    return materialized
            if not shared:
                return raw(rt, loop, env)
            key = rt._memo_key(node, loop, env)
            hit = rt._memo.get(key)
            if hit is not None:
                explain.record("plan", "plan.cse.reuse", hit.row_count,
                               hit.row_count, detail=kind)
                return hit
            result = raw(rt, loop, env)
            rt._memo[key] = result
            return result
        return wrapped

    # ------------------------------------------------------------------ #
    # static column requirements (resolved once, not per execution)
    # ------------------------------------------------------------------ #
    def _needs_pos(self, node: PlanNode) -> bool:
        return "pos" in self.plan.required_columns(node)

    def _needs_item(self, node: PlanNode) -> tuple[bool, bool]:
        """The interpreter's ``_needs_item`` split into (static verdict,
        cache-dependent bit): the one dynamic input is whether a cross-query
        subplan cache is attached — cache-marked nodes must materialise
        items for *other* queries' consumers — so the closure evaluates
        ``static or (cache_dependent and rt._subplan_cache is not None)``.
        """
        if not self.typed_columns:
            return True, False
        static = "item" in self.plan.required_columns(node)
        cache_dependent = not static \
            and self.plan.cache_keys.get(node.id) is not None
        return static, cache_dependent

    # ------------------------------------------------------------------ #
    # operand sources: per-iteration views with constant fast paths
    # ------------------------------------------------------------------ #
    def _inline_const(self, child: PlanNode) -> bool:
        """A constant operand's per-iteration view can be built directly
        (no lifted table) — except for shared consts, whose memoisation
        trace records must stay identical to the interpreter's."""
        return child.kind == "const" and child.id not in self.plan.shared

    def _scalar_source(self, child: PlanNode) -> Callable:
        """``fn(rt, loop, env) -> {iteration: first item}``.  A constant
        operand skips the lifted table entirely — its singleton view is a
        direct per-iteration dict of the literal."""
        if self._inline_const(child):
            value = child.p("value")
            return lambda rt, loop, env: dict.fromkeys(loop.col("iter"),
                                                       value)
        fn = self.closure(child)
        return lambda rt, loop, env: _singleton_values(fn(rt, loop, env))

    def _grouped_source(self, child: PlanNode) -> Callable:
        """``fn(rt, loop, env) -> {iteration: [items]}`` (sequence view)."""
        if self._inline_const(child):
            value = child.p("value")
            return lambda rt, loop, env: {
                iteration: [value] for iteration in loop.col("iter")}
        fn = self.closure(child)
        return lambda rt, loop, env: items_by_iteration(fn(rt, loop, env))

    def _ebv_source(self, child: PlanNode) -> Callable:
        """``fn(rt, loop, env) -> {iteration: effective boolean value}``.
        Constant operands precompute their EBV at codegen time."""
        if self._inline_const(child):
            verdict = effective_boolean_value([child.p("value")])
            return lambda rt, loop, env: dict.fromkeys(loop.col("iter"),
                                                       verdict)
        fn = self.closure(child)

        def source(rt, loop, env):
            grouped = items_by_iteration(fn(rt, loop, env))
            return {iteration: effective_boolean_value(
                        grouped.get(iteration, []))
                    for iteration in loop.col("iter")}
        return source

    # ------------------------------------------------------------------ #
    # literals, variables, sequences
    # ------------------------------------------------------------------ #
    def _gen_const(self, node: PlanNode) -> Callable:
        value = node.p("value")
        return lambda rt, loop, env: lift_constant(loop, value)

    def _gen_empty(self, node: PlanNode) -> Callable:
        return lambda rt, loop, env: empty_sequence()

    def _gen_var(self, node: PlanNode) -> Callable:
        name = node.p("name")

        def fn(rt, loop, env):
            table = env.get(name)
            if table is not None:
                return table
            if name in rt.global_items:
                return lift_items(loop, rt.global_items[name])
            raise XQueryRuntimeError(f"unbound variable ${name}")
        return fn

    def _gen_context(self, node: PlanNode) -> Callable:
        def fn(rt, loop, env):
            table = env.get(".")
            if table is None:
                raise XQueryRuntimeError("the context item is undefined here")
            return table
        return fn

    def _gen_root(self, node: PlanNode) -> Callable:
        def fn(rt, loop, env):
            context = env.get(".")
            if context is None:
                raise XQueryRuntimeError(
                    "absolute path used without a context document")
            values: dict[int, Any] = {}
            for iteration, item in zip(context.col("iter"),
                                       context.col("item")):
                if not isinstance(item, NodeRef):
                    raise XQueryTypeError("the context item is not a node")
                values.setdefault(
                    iteration, NodeRef(item.container,
                                       item.container.root_pre(item.pre)))
            return singleton_per_iter(loop, values)
        return fn

    def _gen_seq(self, node: PlanNode) -> Callable:
        part_fns = [self.closure(child) for child in node.children]
        need_pos = self._needs_pos(node)

        def fn(rt, loop, env):
            return rt._concatenate([part(rt, loop, env) for part in part_fns],
                                   need_pos=need_pos)
        return fn

    def _gen_range(self, node: PlanNode) -> Callable:
        start_src = self._scalar_source(node.children[0])
        end_src = self._scalar_source(node.children[1])

        def fn(rt, loop, env):
            start = start_src(rt, loop, env)
            end = end_src(rt, loop, env)
            pairs: list[tuple[int, Any]] = []
            for iteration in loop.col("iter"):
                low = to_number(start.get(iteration))
                high = to_number(end.get(iteration))
                if low is None or high is None:
                    continue
                for value in range(int(low), int(high) + 1):
                    pairs.append((iteration, value))
            return from_iter_items(pairs)
        return fn

    # ------------------------------------------------------------------ #
    # arithmetic, comparisons, logic
    # ------------------------------------------------------------------ #
    def _gen_arith(self, node: PlanNode) -> Callable:
        left_src = self._scalar_source(node.children[0])
        right_src = self._scalar_source(node.children[1])
        op = node.p("op")
        arithmetic = ops.arithmetic

        def fn(rt, loop, env):
            left = left_src(rt, loop, env)
            right = right_src(rt, loop, env)
            values: dict[int, Any] = {}
            for iteration in loop.col("iter"):
                if iteration not in left or iteration not in right:
                    continue
                result = arithmetic(op, atomize(left[iteration]),
                                    atomize(right[iteration]))
                if result is not None:
                    values[iteration] = result
            return singleton_per_iter(loop, values)
        return fn

    def _gen_unary(self, node: PlanNode) -> Callable:
        operand_src = self._scalar_source(node.children[0])
        negate = node.p("negate")

        def fn(rt, loop, env):
            operand = operand_src(rt, loop, env)
            values: dict[int, Any] = {}
            for iteration in loop.col("iter"):
                if iteration not in operand:
                    continue
                number = to_number(operand[iteration])
                if number is None:
                    continue
                values[iteration] = -number if negate else number
            return singleton_per_iter(loop, values)
        return fn

    def _gen_cmp_value(self, node: PlanNode) -> Callable:
        left_src = self._scalar_source(node.children[0])
        right_src = self._scalar_source(node.children[1])
        op = node.p("op")
        compare_values = ops.compare_values

        def fn(rt, loop, env):
            left = left_src(rt, loop, env)
            right = right_src(rt, loop, env)
            values: dict[int, Any] = {}
            for iteration in loop.col("iter"):
                if iteration not in left or iteration not in right:
                    continue
                values[iteration] = compare_values(
                    op, atomize(left[iteration]), atomize(right[iteration]))
            return singleton_per_iter(loop, values)
        return fn

    def _gen_cmp_general(self, node: PlanNode) -> Callable:
        left_src = self._grouped_source(node.children[0])
        right_src = self._grouped_source(node.children[1])
        op = node.p("op")
        strategy = self.existential_strategy

        def fn(rt, loop, env):
            true_iterations = existential_compare(
                left_src(rt, loop, env), right_src(rt, loop, env), op,
                strategy=strategy)
            values = {iteration: iteration in true_iterations
                      for iteration in loop.col("iter")}
            return singleton_per_iter(loop, values)
        return fn

    def _gen_and(self, node: PlanNode) -> Callable:
        operand_srcs = [self._ebv_source(child) for child in node.children]

        def fn(rt, loop, env):
            verdict = dict.fromkeys(loop.col("iter"), True)
            for source in operand_srcs:
                partial = source(rt, loop, env)
                for iteration in verdict:
                    verdict[iteration] = verdict[iteration] \
                        and partial.get(iteration, False)
            return singleton_per_iter(loop, verdict)
        return fn

    def _gen_or(self, node: PlanNode) -> Callable:
        operand_srcs = [self._ebv_source(child) for child in node.children]

        def fn(rt, loop, env):
            verdict = dict.fromkeys(loop.col("iter"), False)
            for source in operand_srcs:
                partial = source(rt, loop, env)
                for iteration in verdict:
                    verdict[iteration] = verdict[iteration] \
                        or partial.get(iteration, False)
            return singleton_per_iter(loop, verdict)
        return fn

    def _gen_if(self, node: PlanNode) -> Callable:
        condition_src = self._ebv_source(node.children[0])
        then_fn = self.closure(node.children[1])
        else_fn = self.closure(node.children[2])
        order_opt = self.order_opt

        def fn(rt, loop, env):
            verdict = condition_src(rt, loop, env)
            then_iters = [it for it in loop.col("iter")
                          if verdict.get(it, False)]
            else_iters = [it for it in loop.col("iter")
                          if not verdict.get(it, False)]
            parts = []
            if then_iters:
                then_loop = make_loop(then_iters)
                then_env = {name: restrict_sequence(table, then_iters)
                            for name, table in env.items()}
                parts.append(then_fn(rt, then_loop, then_env))
            if else_iters:
                else_loop = make_loop(else_iters)
                else_env = {name: restrict_sequence(table, else_iters)
                            for name, table in env.items()}
                parts.append(else_fn(rt, else_loop, else_env))
            parts = [part for part in parts if part.row_count]
            if not parts:
                return empty_sequence()
            merged = ops.union_all(parts)
            return sort(merged, ("iter", "pos"), use_properties=order_opt)
        return fn

    # ------------------------------------------------------------------ #
    # FLWOR
    # ------------------------------------------------------------------ #
    def _gen_flwor(self, node: PlanNode) -> Callable:
        options = self.options
        nclauses = node.p("nclauses")
        has_where = node.p("has_where")
        norder = node.p("norder")
        clauses = node.children[:nclauses]
        where = node.children[nclauses] if has_where else None
        spec_start = nclauses + (1 if has_where else 0)
        orderspecs = node.children[spec_start:spec_start + norder]
        return_node = node.children[-1]

        conjuncts = flatten_conjuncts(where) if where is not None else []
        conjunct_srcs = [self._ebv_source(conjunct) for conjunct in conjuncts]

        wcoj_spec = node.p("wcoj")
        use_wcoj = (wcoj_spec is not None and options.join_recognition
                    and getattr(options, "wcoj", True))

        join_by_clause: dict[int, tuple[int, int, int]] = {}
        estimate_by_clause: dict[int, Any] = {}
        if options.join_recognition and node.p("join") is not None:
            triples = node.p("joins") or (node.p("join"),)
            join_by_clause = {triple[0]: tuple(triple) for triple in triples}
            for estimate in self.plan.join_estimates.get(node.id, ()):
                estimate_by_clause[estimate.clause] = estimate

        schedule = tuple(range(nclauses))
        if join_by_clause and options.cost_based_joins:
            annotated = node.p("clause_order")
            if annotated is not None \
                    and sorted(annotated) == list(range(nclauses)):
                schedule = tuple(annotated)
        reordered = schedule != tuple(range(nclauses))

        # per clause (syntactic order): the static facts + binding closure
        clause_info = []
        for clause in clauses:
            clause_info.append((clause, clause.kind == "let",
                                clause.p("var"), clause.p("posvar"),
                                self.closure(clause.children[0]),
                                clause.children[1:]))

        body_fn = self.closure(return_node)
        need_pos = self._needs_pos(node) or norder > 0
        order_opt = self.order_opt

        def fn(rt, loop, env):
            wcoj_state = None
            if use_wcoj:
                wcoj_state = rt._execute_wcoj(clauses, conjuncts, wcoj_spec,
                                              loop, env)
            if wcoj_state is not None:
                tuple_map, current_loop, current_env, consumed = wcoj_state
            else:
                current_loop = loop
                current_env = dict(env)
                tuple_map = None
                consumed = set()
                clause_keys = {iteration: {}
                               for iteration in loop.col("iter")} \
                    if reordered else None

                for index in schedule:
                    clause, is_let, var, posvar, seq_fn, predicates = \
                        clause_info[index]
                    if is_let:
                        current_env[var] = seq_fn(rt, current_loop,
                                                  current_env)
                        continue
                    triple = join_by_clause.get(index)
                    if triple is not None:
                        join_plan = rt._execute_join(
                            clause, conjuncts[triple[1]], triple[2],
                            current_loop, current_env,
                            estimate=estimate_by_clause.get(index))
                        if join_plan is not None:
                            scope_map, inner_loop, bindings, ranks = join_plan
                            current_env = lift_environment(current_env,
                                                           scope_map)
                            current_env.update(bindings)
                            tuple_map = rt._compose_maps(tuple_map, scope_map)
                            if clause_keys is not None:
                                clause_keys = rt._advance_clause_keys(
                                    clause_keys, index, scope_map, ranks)
                            current_loop = inner_loop
                            consumed.add(triple[1])
                            continue
                    sequence = seq_fn(rt, current_loop, current_env)
                    if predicates:
                        sequence = rt._filter_binding(sequence, var,
                                                      predicates, current_env)
                    scope_map, inner_loop, variable, positions = for_binding(
                        sequence, use_properties=order_opt)
                    current_env = lift_environment(current_env, scope_map)
                    current_env[var] = variable
                    if posvar:
                        current_env[posvar] = positions
                    tuple_map = rt._compose_maps(tuple_map, scope_map)
                    if clause_keys is not None:
                        clause_keys = rt._advance_clause_keys(
                            clause_keys, index, scope_map,
                            list(positions.col("item")))
                    current_loop = inner_loop

                if reordered and tuple_map is not None:
                    current_loop, current_env, tuple_map = \
                        rt._restore_clause_order(
                            loop, current_loop, current_env, tuple_map,
                            clause_keys, nclauses)

            remaining = [index for index in range(len(conjuncts))
                         if index not in consumed]
            if remaining:
                verdict = dict.fromkeys(current_loop.col("iter"), True)
                for index in remaining:
                    partial = conjunct_srcs[index](rt, current_loop,
                                                   current_env)
                    for iteration in verdict:
                        verdict[iteration] = verdict[iteration] \
                            and partial.get(iteration, False)
                surviving = [it for it in current_loop.col("iter")
                             if verdict.get(it, False)]
                current_loop = make_loop(surviving)
                current_env = {name: restrict_sequence(table, surviving)
                               for name, table in current_env.items()}

            order_keys = None
            if orderspecs:
                order_keys = rt._order_by_ranks(orderspecs, current_loop,
                                                current_env)

            body = body_fn(rt, current_loop, current_env)

            if tuple_map is None:
                if order_keys is not None:
                    raise XQueryUnsupportedError(
                        "order by requires at least one for clause")
                return body
            return back_map(tuple_map, body, order_keys=order_keys,
                            use_properties=order_opt, need_pos=need_pos)
        return fn

    # ------------------------------------------------------------------ #
    # quantified expressions
    # ------------------------------------------------------------------ #
    def _gen_quantified(self, node: PlanNode) -> Callable:
        variables = node.p("variables")
        quantifier = node.p("quantifier")
        sequence_fns = [self.closure(child) for child in node.children[:-1]]
        verdict_src = self._ebv_source(node.children[-1])
        order_opt = self.order_opt

        def fn(rt, loop, env):
            current_loop = loop
            current_env = dict(env)
            tuple_map = None
            for variable, seq_fn in zip(variables, sequence_fns):
                sequence = seq_fn(rt, current_loop, current_env)
                scope_map, inner_loop, bound, _ = for_binding(
                    sequence, use_properties=order_opt)
                current_env = lift_environment(current_env, scope_map)
                current_env[variable] = bound
                tuple_map = rt._compose_maps(tuple_map, scope_map)
                current_loop = inner_loop

            verdict = verdict_src(rt, current_loop, current_env)
            per_outer: dict[int, list[bool]] = {}
            if tuple_map is None:
                per_outer = {iteration: [] for iteration in loop.col("iter")}
            else:
                for outer, inner in zip(tuple_map.col("outer"),
                                        tuple_map.col("inner")):
                    per_outer.setdefault(outer, []).append(
                        verdict.get(inner, False))
            values: dict[int, bool] = {}
            for iteration in loop.col("iter"):
                outcomes = per_outer.get(iteration, [])
                values[iteration] = any(outcomes) if quantifier == "some" \
                    else all(outcomes)
            return singleton_per_iter(loop, values)
        return fn

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def _chain_nodes(self, node: PlanNode, *, trim_at_cache: bool
                     ) -> list[PlanNode] | None:
        """The step nodes (head first) of the node's fused chain, mirroring
        the interpreter's ``_fused_chain`` for one cache configuration."""
        if not self.step_fusion:
            return None
        length = self.plan.fused_chains.get(node.id, 0)
        if length < 2:
            return None
        chain = [node]
        current = node
        while len(chain) < length:
            deeper = current.children[0]
            if trim_at_cache and deeper.id in self.plan.cache_keys:
                break
            chain.append(deeper)
            current = deeper
        if len(chain) < 2:
            return None
        return chain

    def _chain_runner(self, chain: list[PlanNode] | None
                      ) -> Callable | None:
        """A closure running one precomputed fused chain (specs resolved,
        positional predicates included) through ``axis_step_chain``."""
        if chain is None:
            return None
        head = chain[0]
        base_fn = self.closure(chain[-1].children[0])
        specs = []
        for step in reversed(chain):
            name = step.p("test_name")
            pos_spec = positional_predicate_spec(step.children[1]) \
                if len(step.children) > 1 else None
            specs.append((step.p("axis"),
                          NodeTest(kind=step.p("test_kind"),
                                   name=name if name not in (None, "*")
                                   else None),
                          pos_spec))
        item_static, item_cache_dep = self._needs_item(head)
        step_options = self.step_options

        def run(rt, loop, env):
            return axis_step_chain(
                base_fn(rt, loop, env), specs, options=step_options,
                stats=rt.step_stats,
                need_item=item_static or (item_cache_dep
                                          and rt._subplan_cache is not None))
        return run

    def _gen_step(self, node: PlanNode) -> Callable:
        context_fn = self.closure(node.children[0])
        predicates = node.children[1:]
        name = node.p("test_name")
        node_test = NodeTest(kind=node.p("test_kind"),
                             name=name if name not in (None, "*") else None)
        axis = node.p("axis")
        step_options = self.step_options
        order_opt = self.order_opt
        item_static, item_cache_dep = self._needs_item(node)
        need_pos = self._needs_pos(node)

        # the fused-chain decision is static except for one bit — whether a
        # cross-query subplan cache is attached (cache-marked interior nodes
        # must stay chain boundaries so their slots keep materialising) —
        # so both variants are precompiled and the runtime picks by that bit
        plain_chain = self._chain_nodes(node, trim_at_cache=False)
        trimmed_chain = self._chain_nodes(node, trim_at_cache=True)
        run_plain = self._chain_runner(plain_chain)
        if trimmed_chain is not None and plain_chain is not None \
                and [n.id for n in trimmed_chain] \
                == [n.id for n in plain_chain]:
            run_trimmed = run_plain
        else:
            run_trimmed = self._chain_runner(trimmed_chain)

        if not predicates:
            def fn(rt, loop, env):
                runner = run_trimmed if rt._subplan_cache is not None \
                    else run_plain
                if runner is not None:
                    return runner(rt, loop, env)
                return axis_step(
                    context_fn(rt, loop, env), axis, node_test,
                    options=step_options, stats=rt.step_stats,
                    need_item=item_static or (
                        item_cache_dep and rt._subplan_cache is not None))
            return fn

        def fn(rt, loop, env):
            runner = run_trimmed if rt._subplan_cache is not None \
                else run_plain
            if runner is not None:
                return runner(rt, loop, env)
            # predicates need positions relative to each context node: a
            # nested iteration scope with one iteration per context node
            context = context_fn(rt, loop, env)
            scope_map, sub_loop, dot, _ = for_binding(
                context, use_properties=order_opt)
            produced = axis_step(dot, axis, node_test, options=step_options,
                                 stats=rt.step_stats)
            sub_env = lift_environment(env, scope_map)
            sub_env["."] = dot
            filtered = rt._apply_predicates(produced, predicates, sub_loop,
                                            sub_env, reverse=axis.is_reverse)
            merged = back_map(scope_map, filtered, use_properties=order_opt)
            return rt._nodes_in_document_order(merged, need_pos=need_pos)
        return fn

    def _gen_filter(self, node: PlanNode) -> Callable:
        base_fn = self.closure(node.children[0])
        predicates = node.children[1:]

        def fn(rt, loop, env):
            return rt._apply_predicates(base_fn(rt, loop, env), predicates,
                                        loop, env)
        return fn

    # ------------------------------------------------------------------ #
    # function calls
    # ------------------------------------------------------------------ #
    def _gen_call(self, node: PlanNode) -> Callable:
        name = node.p("name")
        if name.startswith("fn:"):
            name = name[3:]

        if name == "position" and not node.children:
            def fn(rt, loop, env):
                table = env.get("fs:position")
                if table is None:
                    raise XQueryRuntimeError(
                        "position() used outside a predicate")
                return table
            return fn
        if name == "last" and not node.children:
            def fn(rt, loop, env):
                table = env.get("fs:last")
                if table is None:
                    raise XQueryRuntimeError(
                        "last() used outside a predicate")
                return table
            return fn

        # the coverage analysis routed user functions and unknown names to
        # the interpreter, so this lookup cannot fail at codegen time
        implementation = functions.lookup(name)

        if name in _CONTEXT_BUILTINS and not node.children:
            def fn(rt, loop, env):
                context = env.get(".")
                if context is None:
                    raise XQueryRuntimeError(
                        "the context item is undefined here")
                return implementation(rt, loop, [context])
            return fn

        argument_fns = [self.closure(argument)
                        for argument in node.children]

        def fn(rt, loop, env):
            return implementation(
                rt, loop, [argument(rt, loop, env)
                           for argument in argument_fns])
        return fn
