"""The ``iter|pos|item`` sequence encoding and loop-lifting plumbing.

Section 2.1: every XQuery (sub)expression is compiled with respect to its
enclosing ``for``-loops, represented by a unary ``loop`` relation of
iteration numbers.  The value of an expression is an ``iter|pos|item`` table:
tuple ``(i, p, x)`` means "in iteration *i* the item at position *p* is *x*".

This module provides the building blocks the compiler uses:

* :func:`lift_constant` / :func:`lift_items` — loop-lifting of constants and
  literal sequences (``loop × (pos, item)``),
* :func:`for_binding` — the ρ-based construction of the *scope map*
  (``outer|inner``), the inner loop relation and the variable representation
  for a ``for`` clause,
* :func:`lift_environment` — re-keying free variables to an inner loop via
  the scope map,
* :func:`back_map` — mapping an inner-loop result back to the enclosing loop
  (the single equi-join with the scope map, plus positional renumbering),
* small utilities (:func:`sequence_items`, :func:`singleton_per_iter`, ...).

All tables produced here are kept ordered on ``[iter, pos]`` — the invariant
the order-aware physical algebra of Section 4.1 maintains so that sorts can
be skipped downstream.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..relational import operators as ops
from ..relational.column import Column, DenseColumn, IntColumn, make_column
from ..relational.properties import ColumnProps, TableProps
from ..relational.table import Table


SEQ_COLUMNS = ("iter", "pos", "item")


def empty_sequence() -> Table:
    """The relational encoding of the empty sequence ``()`` for every iteration."""
    table = Table.empty(SEQ_COLUMNS)
    table.props.order = ("iter", "pos")
    return table


def make_loop(iterations: Sequence[int]) -> Table:
    """Build a loop relation from explicit iteration numbers (ascending).

    A ``range`` input yields a virtual dense column; everything else is a
    typed ``i64`` column (iteration numbers are always integers).
    """
    if isinstance(iterations, range) and iterations.step == 1:
        column: Column = DenseColumn("iter", len(iterations),
                                     base=iterations.start)
    else:
        column = IntColumn("iter", iterations, infer=True)
    return Table([column], props=TableProps(order=("iter",)))


def unit_loop() -> Table:
    """The outermost loop relation: a single iteration."""
    return make_loop([1])


def sequence_table(rows: Iterable[tuple[int, int, Any]]) -> Table:
    """Build an ``iter|pos|item`` table from explicit rows (test helper)."""
    rows = list(rows)
    table = Table.from_dict({
        "iter": [row[0] for row in rows],
        "pos": [row[1] for row in rows],
        "item": [row[2] for row in rows],
    }, order=("iter", "pos"))
    return table


def lift_constant(loop: Table, value: Any) -> Table:
    """Loop-lift a single constant item: every iteration sees ``(1, value)``."""
    count = loop.row_count
    columns = [
        loop.column("iter").renamed("iter"),
        Column.constant("pos", 1, count),
        Column.constant("item", value, count),
    ]
    return Table(columns, props=TableProps(order=("iter", "pos")))


def lift_items(loop: Table, items: Sequence[Any]) -> Table:
    """Loop-lift a literal item sequence: every iteration sees the whole sequence."""
    from array import array

    iters = array("q")
    positions = array("q")
    values: list[Any] = []
    width = len(items)
    pos_block = range(1, width + 1)
    for iteration in loop.col("iter"):
        iters.extend([iteration] * width)
        positions.extend(pos_block)
        values.extend(items)
    columns = [IntColumn("iter", iters), IntColumn("pos", positions),
               Column("item", values)]
    return Table(columns, props=TableProps(order=("iter", "pos")))


def from_iter_items(pairs: Sequence[tuple[int, Any]], *,
                    need_pos: bool = True) -> Table:
    """Build a sequence table from (iter, item) pairs already in sequence order.

    Positions are renumbered densely per iteration (streaming, since the
    pairs are grouped per iteration in order).  With ``need_pos=False`` —
    the projection-pushdown rewrite proved no consumer reads ``pos`` — the
    renumbering is skipped and a constant column stands in.
    """
    iters = [pair[0] for pair in pairs]
    items = [pair[1] for pair in pairs]
    if not need_pos:
        from ..relational import explain
        explain.record("project", "project.pushdown", len(iters), len(iters),
                       detail="pos pruned")
        return Table([
            IntColumn("iter", iters),
            Column.constant("pos", 1, len(iters)),
            Column("item", items),
        ], props=TableProps(order=("iter",)))
    table = Table([IntColumn("iter", iters), Column("item", items)],
                  props=TableProps(order=("iter",)))
    table.add_group_order((), "iter")
    table = ops.rownum(table, "pos", (), partition="iter")
    table = ops.project(table, {"iter": "iter", "pos": "pos", "item": "item"})
    table.props.order = ("iter", "pos")
    return table


def sequence_items(sequence: Table, iteration: int | None = None) -> list[Any]:
    """The items of a sequence table (optionally restricted to one iteration)."""
    if iteration is None:
        return list(sequence.col("item"))
    return [item for it, item in zip(sequence.col("iter"), sequence.col("item"))
            if it == iteration]


def items_by_iteration(sequence: Table) -> dict[int, list[Any]]:
    """Group the items of a sequence table per iteration (in sequence order)."""
    grouped: dict[int, list[Any]] = {}
    for iteration, item in zip(sequence.col("iter"), sequence.col("item")):
        grouped.setdefault(iteration, []).append(item)
    return grouped


def ensure_sequence_order(sequence: Table, *, use_properties: bool = True) -> Table:
    """Guarantee the ``[iter, pos]`` ordering of a sequence table."""
    from ..relational.sorting import sort
    return sort(sequence, ("iter", "pos"), use_properties=use_properties)


# --------------------------------------------------------------------------- #
# for-binding: scope map, inner loop, variable representation
# --------------------------------------------------------------------------- #
def for_binding(sequence: Table, *, use_properties: bool = True
                ) -> tuple[Table, Table, Table, Table]:
    """Derive the pieces needed to compile ``for $v in <sequence>``.

    Given the ``iter|pos|item`` encoding of the bound sequence (ordered on
    ``[iter, pos]``), returns a 4-tuple:

    * ``scope_map`` — ``outer|inner`` relation mapping enclosing-loop
      iterations to the new (one per bound item) iterations,
    * ``inner_loop`` — the new loop relation (column ``iter``),
    * ``variable`` — the representation of ``$v`` keyed by the inner loop
      (``iter|pos|item`` with ``pos = 1``),
    * ``positions`` — ``iter|pos|item`` giving the original position of the
      bound item within its enclosing iteration (used for ``at $p``).
    """
    sequence = ensure_sequence_order(sequence, use_properties=use_properties)
    numbered = ops.rownum(sequence, "inner", (), partition=None,
                          use_properties=True)
    count = numbered.row_count

    scope_map = ops.project(numbered, {"outer": "iter", "inner": "inner"})
    # `inner` is numbered in [iter, pos] order, so the map is ordered both on
    # inner alone and lexicographically on (outer, inner)
    scope_map.props.order = ("outer", "inner")
    scope_map.column("inner").props = ColumnProps(dense=True, dense_base=1, key=True)

    inner_loop = ops.project(numbered, {"iter": "inner"})
    inner_loop.props.order = ("iter",)
    inner_loop.column("iter").props = ColumnProps(dense=True, dense_base=1, key=True)

    # `inner` is 1..count by construction: both derived tables get a
    # virtual dense iter column instead of a materialised copy
    variable = Table([
        Column.dense("iter", count, base=1),
        Column.constant("pos", 1, count),
        numbered.column("item").renamed("item"),
    ], props=TableProps(order=("iter", "pos")))

    positions = Table([
        Column.dense("iter", count, base=1),
        Column.constant("pos", 1, count),
        make_column("item", numbered.col("pos")),
    ], props=TableProps(order=("iter", "pos")))

    return scope_map, inner_loop, variable, positions


def lift_environment(environment: dict[str, Table], scope_map: Table, *,
                     use_positional: bool = True) -> dict[str, Table]:
    """Re-key every variable representation to the inner loop of a scope map.

    For each variable the scope map (``outer|inner``, ordered on ``inner``)
    is joined with the variable's ``iter|pos|item`` table on
    ``outer = iter``; the result is keyed by ``inner`` and stays ordered on
    ``[inner, pos]`` because the scope map is scanned in ``inner`` order.
    """
    lifted: dict[str, Table] = {}
    for name, representation in environment.items():
        renamed = ops.project(representation,
                              {"outer_iter": "iter", "pos": "pos", "item": "item"})
        joined = ops.join(scope_map, renamed, "outer", "outer_iter",
                          use_positional=False)
        result = ops.project(joined, {"iter": "inner", "pos": "pos", "item": "item"})
        result.props.order = ("iter", "pos")
        lifted[name] = result
    return lifted


def restrict_loop(loop: Table, iterations: Iterable[int]) -> Table:
    """A new loop relation containing only the given iterations (order kept)."""
    wanted = set(iterations)
    kept = [iteration for iteration in loop.col("iter") if iteration in wanted]
    return make_loop(kept)


def restrict_sequence(sequence: Table, iterations: Iterable[int]) -> Table:
    """Keep only the rows of the given iterations (sequence order preserved)."""
    return ops.select_in(sequence, "iter", iterations)


def back_map(scope_map: Table, body: Table, *,
             order_keys: Table | None = None,
             use_properties: bool = True,
             need_pos: bool = True) -> Table:
    """Map an inner-loop result back to the enclosing loop.

    ``scope_map`` is the ``outer|inner`` relation of :func:`for_binding`;
    ``body`` is the inner-loop result (``iter|pos|item`` keyed by inner
    iterations).  The result is keyed by the *outer* iterations with
    positions renumbered in (outer, inner, pos) order — i.e. concatenating
    the per-iteration results of the inner loop in iteration order, which is
    exactly the XQuery semantics of a ``for`` loop.

    ``order_keys`` optionally supplies ``order by`` sort keys per inner
    iteration (columns ``iter`` and ``key1`` .. ``keyN``): the inner
    iterations are then ordered by the keys instead of their iteration
    number.

    ``need_pos=False`` (only valid without ``order_keys``) applies the
    projection-pushdown rewrite: no consumer reads positions, so the sort
    and the positional renumbering are skipped — the join output already
    carries the right per-iteration item order.
    """
    from ..relational import explain
    from ..relational.sorting import sort

    renamed_body = ops.project(body, {"body_iter": "iter", "body_pos": "pos",
                                      "item": "item"})
    joined = ops.join(scope_map, renamed_body, "inner", "body_iter",
                      use_positional=False)
    # the hash join probes the scope map in its (outer, inner) order and the
    # matches of one inner iteration arrive in body_pos order, so the output
    # is physically ordered on (outer, inner, body_pos) — the property the
    # order-aware peephole pass infers to prune the sort below
    joined.props.order = ("outer", "inner", "body_pos")

    if order_keys is None and not need_pos:
        result = ops.project(joined, {"iter": "outer", "item": "item"})
        result = ops.attach(result, "pos", 1)
        result = ops.project(result, {"iter": "iter", "pos": "pos",
                                      "item": "item"})
        result.props.order = ("iter",)
        explain.record("project", "project.pushdown", joined.row_count,
                       result.row_count, detail="back_map pos pruned")
        return result

    if order_keys is not None:
        key_columns = [name for name in order_keys.column_names if name != "iter"]
        renamed_keys = ops.project(order_keys,
                                   dict({"key_iter": "iter"},
                                        **{name: name for name in key_columns}))
        joined = ops.join(joined, renamed_keys, "inner", "key_iter",
                          use_positional=False)
        minor_order = (*key_columns, "inner", "body_pos")
        joined = sort(joined, ("outer", *minor_order),
                      use_properties=use_properties)
    else:
        minor_order = ("inner", "body_pos")
        joined = sort(joined, ("outer", *minor_order),
                      use_properties=use_properties)
        joined.add_group_order(minor_order, "outer")

    numbered = ops.rownum(joined, "new_pos", minor_order, partition="outer",
                          use_properties=use_properties)
    result = ops.project(numbered, {"iter": "outer", "pos": "new_pos",
                                    "item": "item"})
    result.props.order = ("iter", "pos")
    return result


def singleton_per_iter(loop: Table, values_by_iter: dict[int, Any]) -> Table:
    """Build a sequence table with (at most) one item per loop iteration."""
    iters = []
    items = []
    for iteration in loop.col("iter"):
        if iteration in values_by_iter:
            iters.append(iteration)
            items.append(values_by_iter[iteration])
    table = Table([
        IntColumn("iter", iters, infer=True),
        Column.constant("pos", 1, len(iters)),
        Column("item", items),
    ], props=TableProps(order=("iter", "pos")))
    return table
