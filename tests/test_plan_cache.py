"""``MonetXQuery.prepare`` and the LRU prepared-plan cache.

A repeated query must hit the cache — observable through the cache
counters, the ``plan.cache.hit`` explain record and a parse counter — and
return identical results.  The cache key covers query text, engine options
and the document-store schema version, so loading/dropping documents and
committing updates invalidate stale plans.
"""

import pytest

from repro import MonetXQuery, PreparedQuery, XMLUpdater
from repro.relational import capture
from repro.xquery import engine as engine_module


DOC = ("<site><people>"
       "<person id=\"p0\"><name>Alice</name></person>"
       "<person id=\"p1\"><name>Bob</name></person>"
       "</people></site>")

QUERY = "for $p in /site/people/person return $p/name/text()"


@pytest.fixture
def mxq() -> MonetXQuery:
    engine = MonetXQuery()
    engine.load_document_text(DOC, name="doc.xml")
    return engine


class TestPrepare:
    def test_prepare_returns_a_runnable_prepared_query(self, mxq):
        prepared = mxq.prepare(QUERY)
        assert isinstance(prepared, PreparedQuery)
        assert prepared.run().strings() == ["Alice", "Bob"]

    def test_repeated_prepare_returns_the_cached_object(self, mxq):
        first = mxq.prepare(QUERY)
        second = mxq.prepare(QUERY)
        assert first is second
        assert mxq.plan_cache_stats.hits == 1
        assert mxq.plan_cache_stats.misses == 1

    def test_repeated_query_hits_without_recompiling(self, mxq, monkeypatch):
        parses = []
        original = engine_module.parser.parse

        def counting_parse(text):
            parses.append(text)
            return original(text)

        monkeypatch.setattr(engine_module.parser, "parse", counting_parse)
        first = mxq.query(QUERY)
        second = mxq.query(QUERY)
        assert first.serialize() == second.serialize()
        assert len(parses) == 1          # the second run skipped the compiler
        assert mxq.plan_cache_stats.hits == 1

    def test_cache_hit_is_recorded_on_the_trace(self, mxq):
        mxq.query(QUERY)
        with capture() as trace:
            mxq.query(QUERY)
        assert trace.count("plan.cache.hit") == 1
        assert trace.count("plan.cache.miss") == 0

    def test_explain_renders_the_optimized_plan(self, mxq):
        dump = mxq.explain(QUERY)
        assert "flwor" in dump
        assert "step" in dump
        assert "rewrites" in dump


class TestInvalidation:
    def test_loading_a_document_invalidates(self, mxq):
        mxq.query(QUERY)
        mxq.load_document_text("<extra/>", name="extra.xml",
                               default_context=False)
        with capture() as trace:
            mxq.query(QUERY)
        assert trace.count("plan.cache.miss") == 1

    def test_dropping_a_document_invalidates(self, mxq):
        mxq.load_document_text("<extra/>", name="extra.xml",
                               default_context=False)
        mxq.query(QUERY)
        mxq.drop_document("extra.xml")
        with capture() as trace:
            mxq.query(QUERY)
        assert trace.count("plan.cache.miss") == 1

    def test_update_commit_invalidates_and_refreshes(self, mxq):
        assert mxq.query(QUERY).strings() == ["Alice", "Bob"]
        updater = XMLUpdater(mxq, "doc.xml")
        [target] = updater.select(
            '/site/people/person[@id = "p0"]/name/text()')
        updater.replace_value(target, "Carol")
        updater.commit()
        assert mxq.query(QUERY).strings() == ["Carol", "Bob"]

    def test_update_commit_bumps_version_and_misses_the_cache(self, mxq):
        # regression guard for the cross-query-caching direction: committing
        # an update batch must bump the store's schema version so cached
        # PreparedQuery plans (and any statistics baked into them) can never
        # outlive the document state they were optimized against
        prepared = mxq.prepare(QUERY)
        assert mxq.plan_cache_stats.misses == 1
        version_before = mxq.store.version

        updater = XMLUpdater(mxq, "doc.xml")
        [target] = updater.select(
            '/site/people/person[@id = "p0"]/name/text()')
        updater.replace_value(target, "Carol")
        updater.commit()

        assert mxq.store.version > version_before
        mxq.plan_cache_stats.clear()
        fresh = mxq.prepare(QUERY)
        assert fresh is not prepared                 # a new plan was built
        assert mxq.plan_cache_stats.misses == 1      # observed as a miss
        assert mxq.plan_cache_stats.hits == 0
        assert fresh.run().strings() == ["Carol", "Bob"]

    def test_options_are_part_of_the_key(self, mxq):
        mxq.query(QUERY)
        mxq.query(QUERY, options=mxq.options.replace(join_recognition=False))
        assert mxq.plan_cache_stats.hits == 0
        assert mxq.plan_cache_stats.misses == 2


class TestLRUBehaviour:
    def test_capacity_evicts_least_recently_used(self):
        engine = MonetXQuery(plan_cache_size=2)
        engine.load_document_text(DOC, name="doc.xml")
        engine.query("count(//person)")          # A
        engine.query("count(//name)")            # B
        engine.query("count(//person)")          # A again: hit, A is MRU
        engine.query("count(/site)")             # C: evicts B
        assert engine.plan_cache_stats.evictions == 1
        engine.query("count(//name)")            # B again: must miss
        assert engine.plan_cache_stats.misses == 4
        assert engine.plan_cache_stats.hits == 1

    def test_zero_capacity_disables_caching(self):
        engine = MonetXQuery(plan_cache_size=0)
        engine.load_document_text(DOC, name="doc.xml")
        engine.query(QUERY)
        engine.query(QUERY)
        assert engine.plan_cache_stats.hits == 0
        assert engine.plan_cache_stats.misses == 2

    def test_clear_plan_cache(self, mxq):
        mxq.query(QUERY)
        mxq.clear_plan_cache()
        mxq.query(QUERY)
        assert mxq.plan_cache_stats.hits == 0
        assert mxq.plan_cache_stats.misses == 2


class TestCachedResultsStayCorrect:
    def test_repeated_xmark_query_is_identical(self, xmark_engine):
        from repro.xmark import xmark_query
        text = xmark_query(8)
        first = xmark_engine.query(text)
        with capture() as trace:
            second = xmark_engine.query(text)
        assert trace.count("plan.cache.hit") == 1
        assert first.serialize() == second.serialize()

    def test_prepared_query_sees_new_document_content(self, mxq):
        # the plan is logical: execution reads the store at run() time
        prepared = mxq.prepare("count(//person)")
        assert prepared.run().items == [2]
        assert prepared.run().items == [2]
