"""Section 5.2 — page-wise structural updates cost O(1) logical pages.

The benchmark performs random subtree inserts and deletes against documents
of growing size and records the number of logical pages touched/appended per
update: it must stay constant while the document grows (the whole point of
the rid/page-map indirection), and the updated document must stay correct.
"""

import random

import pytest

from repro.storage import UpdatableDocument
from repro.xmark import generate_document
from repro.xml import DocumentStore, shred_document

from .conftest import BASE_SCALE


SCALES = (BASE_SCALE, BASE_SCALE * 4)


def element_targets(document, count, seed):
    rng = random.Random(seed)
    elements = [pre for pre in range(1, document.node_count)
                if document.size[pre] >= 1]
    return rng.sample(elements, min(count, len(elements)))


@pytest.mark.parametrize("scale", SCALES)
def test_structural_inserts_touch_constant_pages(benchmark, scale):
    text = generate_document(scale, seed=9)
    store = DocumentStore()
    document = shred_document(text, "auction.xml", store)
    fragment = shred_document("<note><text>bench</text></note>", "frag.xml",
                              DocumentStore())
    # apply inserts from the back of the document to the front so that one
    # insert does not shift the dense pre rank of the following targets
    targets = sorted(element_targets(document, 10, seed=5), reverse=True)

    def run():
        updatable = UpdatableDocument.from_container(document, page_size=64,
                                                     fill_factor=0.75)
        touched = []
        for target in targets:
            updatable.insert_subtree(target, fragment, 1)
            # pages_touched already includes any freshly appended pages
            touched.append(updatable.stats.pages_touched)
        return max(touched)

    worst_case_pages = benchmark.pedantic(run, rounds=1, iterations=1,
                                          warmup_rounds=0)
    benchmark.extra_info["experiment"] = "text-updates"
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["document_nodes"] = document.node_count
    benchmark.extra_info["worst_case_pages_per_insert"] = worst_case_pages
    # the paper's claim: the I/O of one insert is bounded by a small constant
    # number of logical pages, independent of the document size
    assert worst_case_pages <= 4


@pytest.mark.parametrize("scale", SCALES)
def test_structural_deletes_touch_only_their_pages(benchmark, scale):
    text = generate_document(scale, seed=9)
    store = DocumentStore()
    document = shred_document(text, "auction.xml", store)

    def run():
        updatable = UpdatableDocument.from_container(document, page_size=64)
        targets = element_targets(updatable.to_container(), 5, seed=3)
        touched = []
        for target in sorted(targets, reverse=True):
            try:
                updatable.delete_subtree(target)
            except Exception:
                continue    # a previous delete may have removed this subtree
            touched.append(updatable.stats.pages_touched)
        return max(touched) if touched else 0

    worst_case = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["experiment"] = "text-updates"
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["worst_case_pages_per_delete"] = worst_case
