"""Nametest / predicate pushdown variants of the loop-lifted staircase join.

Section 3.2: instead of applying a name test (or a more general predicate)
as a post-filter on the full step result, the predicate can be evaluated on
the whole document first — typically answered by the element-name index of
the document container — and the location step is then executed only against
this *candidate list*.  Result generation checks membership in the candidate
list via a two-way merge, and the skipping logic can jump over context nodes
that can never reach the next candidate.

This pays off whenever the name test is more selective than the pure
location step (e.g. the descendant steps from the document root in XMark
Q6/Q7, where without pushdown the step would materialise almost the whole
document).
"""

from __future__ import annotations

import bisect

from ..xml.document import DocumentContainer
from .axes import Axis, NodeTest
from .iterative import StaircaseStats
from .loop_lifted import (ContextPairs, ResultPairs, ll_attribute,
                          loop_lifted_step, normalize_context)


def candidate_list(container: DocumentContainer, node_test: NodeTest) -> list[int] | None:
    """The document-ordered candidate pre list for a node test.

    Returns ``None`` when no index-backed candidate list is available (no
    name test, or a non-element kind test) — callers then fall back to the
    post-filter strategy.
    """
    if node_test is None or not node_test.has_name or node_test.kind != "element":
        return None
    return container.candidates_by_name(node_test.name)


def ll_child_pushdown(container: DocumentContainer, context: ContextPairs,
                      candidates: list[int], *,
                      stats: StaircaseStats | None = None,
                      normalized: bool = False) -> ResultPairs:
    """Loop-lifted child step against a sorted candidate list.

    For every (outermost-per-iteration) context node the candidates falling
    inside its subtree are located with a range lookup; a candidate is a
    child iff its level is one below the context node's level.
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    result: ResultPairs = []
    size = container.size
    level = container.level
    for pre, iteration in context:
        stats.touch()
        end = pre + size[pre]
        child_level = level[pre] + 1
        start = bisect.bisect_right(candidates, pre)
        position = start
        while position < len(candidates) and candidates[position] <= end:
            candidate = candidates[position]
            stats.touch()
            if level[candidate] == child_level:
                result.append((iteration, candidate))
            position += 1
    result.sort(key=lambda pair: (pair[1], pair[0]))
    return result


def ll_descendant_pushdown(container: DocumentContainer, context: ContextPairs,
                           candidates: list[int], *, or_self: bool = False,
                           stats: StaircaseStats | None = None,
                           normalized: bool = False) -> ResultPairs:
    """Loop-lifted descendant(-or-self) step against a sorted candidate list.

    Per iteration the context nodes are pruned to their outermost
    representatives; each surviving context contributes the candidates inside
    its pre range, located by binary search (skipping over candidate-free
    document regions entirely).
    """
    if stats is None:
        stats = StaircaseStats()
    if not normalized:
        context = normalize_context(context)
    stats.contexts_seen += len(context)
    size = container.size

    # prune per iteration: keep only context nodes not covered by an earlier
    # context node of the same iteration
    covered_until: dict[int, int] = {}
    pruned: ContextPairs = []
    for pre, iteration in context:
        end = covered_until.get(iteration, -1)
        if pre <= end:
            stats.contexts_pruned += 1
            continue
        pruned.append((pre, iteration))
        covered_until[iteration] = pre + size[pre]

    result: ResultPairs = []
    for pre, iteration in pruned:
        stats.touch()
        low = pre if or_self else pre + 1
        high = pre + size[pre]
        start = bisect.bisect_left(candidates, low)
        position = start
        while position < len(candidates) and candidates[position] <= high:
            stats.touch()
            result.append((iteration, candidates[position]))
            position += 1
    result.sort(key=lambda pair: (pair[1], pair[0]))
    return result


def loop_lifted_step_pushdown(container: DocumentContainer, context: ContextPairs,
                              axis: Axis, node_test: NodeTest | None, *,
                              stats: StaircaseStats | None = None,
                              normalized: bool = False) -> ResultPairs | None:
    """Pushdown-enabled location step.

    Returns ``None`` when pushdown is not applicable for the axis/node-test
    combination, in which case the caller should use the post-filter variant
    (:func:`repro.staircase.loop_lifted.loop_lifted_step`).  As with the
    plain array producers, ``normalized=True`` promises the context is
    already sorted on ``[pre, iter]`` and duplicate free.
    """
    candidates = candidate_list(container, node_test) if node_test else None
    if candidates is None:
        return None
    if axis is Axis.CHILD:
        return ll_child_pushdown(container, context, candidates, stats=stats,
                                 normalized=normalized)
    if axis is Axis.DESCENDANT:
        return ll_descendant_pushdown(container, context, candidates,
                                      stats=stats, normalized=normalized)
    if axis is Axis.DESCENDANT_OR_SELF:
        return ll_descendant_pushdown(container, context, candidates,
                                      or_self=True, stats=stats,
                                      normalized=normalized)
    return None
