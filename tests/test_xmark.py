"""XMark substrate: generator determinism/structure and the 20-query
integration test cross-checked against the baseline interpreter."""

import pytest

from repro import MonetXQuery
from repro.baselines import TreeWalkingInterpreter
from repro.xmark import (JOIN_QUERIES, XMARK_QUERIES, XMarkGenerator,
                         generate_document, make_engine, run_queries,
                         xmark_query)
from repro.xml.document import NodeRef
from repro.xml.serializer import serialize_sequence


class TestGenerator:
    def test_deterministic_for_same_seed(self):
        assert generate_document(0.0008, seed=3) == generate_document(0.0008, seed=3)

    def test_different_seeds_differ(self):
        assert generate_document(0.0008, seed=3) != generate_document(0.0008, seed=4)

    def test_scale_controls_size(self):
        small = generate_document(0.0008, seed=1)
        large = generate_document(0.004, seed=1)
        assert len(large) > 2 * len(small)

    def test_counts_follow_xmlgen_proportions(self):
        counts = XMarkGenerator(0.01).counts
        assert counts.persons > counts.open_auctions > counts.closed_auctions

    def test_document_is_well_formed_and_queryable(self, xmark_engine):
        doc = xmark_engine.store.get("auction.xml")
        assert doc.node_count > 500
        regions = xmark_engine.query("count(/site/regions/*)").items[0]
        assert regions == 6

    def test_cross_references_resolve(self, xmark_engine):
        dangling = xmark_engine.query(
            "count(for $t in /site/closed_auctions/closed_auction "
            "      where empty(/site/people/person[@id = $t/buyer/@person]) "
            "      return $t)").items[0]
        assert dangling == 0

    def test_deep_annotations_present_for_q15(self, xmark_engine):
        keywords = xmark_engine.query(xmark_query(15)).items
        assert len(keywords) > 0

    def test_unknown_query_number(self):
        with pytest.raises(KeyError):
            xmark_query(21)


def baseline_items(engine, query):
    interpreter = TreeWalkingInterpreter(engine.store)
    container = engine.store.get("auction.xml")
    return interpreter.run(query, context_item=NodeRef(container, 0))


@pytest.mark.parametrize("number", sorted(XMARK_QUERIES))
def test_xmark_query_matches_baseline(xmark_engine, number):
    """Every XMark query: the relational engine and the tree-walking
    interpreter agree on the result (compared after serialization)."""
    query = XMARK_QUERIES[number]
    relational = xmark_engine.query(query)
    baseline = baseline_items(xmark_engine, query)
    assert len(relational.items) == len(baseline)
    assert serialize_sequence(relational.items) == serialize_sequence(baseline)


@pytest.mark.parametrize("number", JOIN_QUERIES)
def test_join_queries_same_result_without_recognition(xmark_engine, number):
    query = XMARK_QUERIES[number]
    fast = xmark_engine.query(query)
    slow = xmark_engine.query(
        query, options=xmark_engine.options.replace(join_recognition=False))
    assert serialize_sequence(fast.items) == serialize_sequence(slow.items)


@pytest.mark.parametrize("number", [1, 2, 6, 7, 14, 15, 19])
def test_step_heavy_queries_same_result_with_iterative_steps(xmark_engine, number):
    query = XMARK_QUERIES[number]
    lifted = xmark_engine.query(query)
    iterative = xmark_engine.query(
        query, options=xmark_engine.options.replace(
            loop_lifted_child=False, loop_lifted_descendant=False,
            loop_lifted_other=False, nametest_pushdown=False))
    assert serialize_sequence(lifted.items) == serialize_sequence(iterative.items)


class TestRunner:
    def test_run_queries_collects_timings(self):
        engine = make_engine(scale=0.0008, seed=5)
        run = run_queries(engine, [1, 6, 17], scale=0.0008)
        assert set(run.timings) == {1, 6, 17}
        assert run.total_seconds() > 0
        assert all(timing.seconds >= 0 for timing in run.timings.values())
