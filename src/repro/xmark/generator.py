"""Deterministic XMark-like auction document generator.

The XMark benchmark [36] models an internet auction site; its ``xmlgen``
tool produces documents whose size is controlled by a *scale factor*
(factor 1.0 ≈ 111 MB).  The original generator (and its Shakespearean word
list) is not redistributable here, so this module generates documents with
the same element structure, attributes and cross-references that the twenty
XMark queries navigate:

* ``regions`` with the six continents, each holding ``item`` elements
  (name, location, quantity, payment, description, shipping, incategory,
  mailbox/mail),
* ``categories`` and the ``catgraph`` edge list,
* ``people`` with ``person`` elements (name, emailaddress, phone, address,
  homepage, creditcard, profile/@income with interests, watches),
* ``open_auctions`` with bidders (date, time, personref, increase), initial,
  current, reserve, itemref, seller, annotation and
* ``closed_auctions`` with seller, buyer, price, itemref, annotation.

Annotation descriptions occasionally contain the deep
``parlist/listitem/parlist/listitem/text/emph/keyword`` nesting that XMark
queries Q15/Q16 look for, and item descriptions occasionally contain the
word ``gold`` that Q14 searches.  Everything is derived from a seeded RNG,
so a given ``(scale, seed)`` pair always yields the identical document.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..xml.document import DocumentContainer, DocumentStore
from ..xml.shredder import shred_document


_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
_WORDS = ("auction", "bid", "gold", "silver", "vintage", "rare", "mint",
          "classic", "signed", "antique", "modern", "large", "small",
          "bargain", "collector", "pristine", "painted", "carved", "royal",
          "humble", "ornate", "plain", "shiny", "dull", "heavy", "light")
_CITIES = ("Amsterdam", "Munich", "Enschede", "Chicago", "Tokyo", "Lima",
           "Nairobi", "Sydney", "Toronto", "Madrid")
_COUNTRIES = ("Netherlands", "Germany", "United States", "Japan", "Peru",
              "Kenya", "Australia", "Canada", "Spain", "France")
_FIRST = ("Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
          "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert",
          "Sybil", "Trent", "Victor", "Wendy", "Yolanda")
_LAST = ("Smith", "Jones", "Miller", "Garcia", "Chen", "Kumar", "Silva",
         "Olsen", "Dubois", "Rossi", "Novak", "Tanaka", "Okafor", "Haines")
_EDUCATION = ("High School", "College", "Graduate School", "Other")


@dataclass
class XMarkCounts:
    """Entity counts derived from the scale factor (xmlgen proportions)."""

    items: int
    persons: int
    open_auctions: int
    closed_auctions: int
    categories: int

    @classmethod
    def for_scale(cls, scale: float) -> "XMarkCounts":
        return cls(
            items=max(6, int(21750 * scale)),
            persons=max(4, int(25500 * scale)),
            open_auctions=max(3, int(12000 * scale)),
            closed_auctions=max(3, int(9750 * scale)),
            categories=max(2, int(1000 * scale)),
        )


class XMarkGenerator:
    """Generate XMark-like documents for a given scale factor."""

    def __init__(self, scale: float = 0.001, seed: int = 42):
        self.scale = scale
        self.seed = seed
        self.counts = XMarkCounts.for_scale(scale)

    # ------------------------------------------------------------------ #
    def generate(self) -> str:
        """Produce the document as an XML string."""
        rng = random.Random(self.seed)
        counts = self.counts
        parts: list[str] = ["<site>"]
        parts.append(self._regions(rng, counts))
        parts.append(self._categories(rng, counts))
        parts.append(self._catgraph(rng, counts))
        parts.append(self._people(rng, counts))
        parts.append(self._open_auctions(rng, counts))
        parts.append(self._closed_auctions(rng, counts))
        parts.append("</site>")
        return "".join(parts)

    def shred(self, store: DocumentStore, name: str = "auction.xml") -> DocumentContainer:
        """Generate and shred the document into a document store."""
        return shred_document(self.generate(), name, store)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _sentence(self, rng: random.Random, words: int) -> str:
        return " ".join(rng.choice(_WORDS) for _ in range(words))

    def _description(self, rng: random.Random, *, deep: bool) -> str:
        """A description element; ``deep`` adds the Q15/Q16 parlist nesting."""
        text = self._sentence(rng, rng.randint(4, 12))
        if not deep:
            return f"<description><text>{text}</text></description>"
        keyword = rng.choice(_WORDS)
        return ("<description><parlist><listitem><parlist><listitem>"
                f"<text><emph><keyword>{keyword}</keyword></emph> {text}</text>"
                "</listitem></parlist></listitem></parlist></description>")

    def _regions(self, rng: random.Random, counts: XMarkCounts) -> str:
        parts = ["<regions>"]
        item_index = 0
        for region_number, region in enumerate(_REGIONS):
            share = counts.items // len(_REGIONS)
            if region_number < counts.items % len(_REGIONS):
                share += 1
            parts.append(f"<{region}>")
            for _ in range(share):
                parts.append(self._item(rng, item_index, counts))
                item_index += 1
            parts.append(f"</{region}>")
        parts.append("</regions>")
        return "".join(parts)

    def _item(self, rng: random.Random, index: int, counts: XMarkCounts) -> str:
        name = f"{rng.choice(_WORDS)} {rng.choice(_WORDS)} {index}"
        deep = rng.random() < 0.1
        mails = "".join(
            f"<mail><from>{rng.choice(_FIRST)}</from><to>{rng.choice(_FIRST)}</to>"
            f"<date>{self._date(rng)}</date><text>{self._sentence(rng, 6)}</text></mail>"
            for _ in range(rng.randint(0, 2)))
        incategories = "".join(
            f'<incategory category="category{rng.randrange(counts.categories)}"/>'
            for _ in range(rng.randint(1, 3)))
        return (
            f'<item id="item{index}" featured="{"yes" if rng.random() < 0.1 else "no"}">'
            f"<location>{rng.choice(_COUNTRIES)}</location>"
            f"<quantity>{rng.randint(1, 5)}</quantity>"
            f"<name>{name}</name>"
            f"<payment>Creditcard</payment>"
            f"{self._description(rng, deep=deep)}"
            f"<shipping>Will ship internationally</shipping>"
            f"{incategories}"
            f"<mailbox>{mails}</mailbox>"
            f"</item>")

    def _categories(self, rng: random.Random, counts: XMarkCounts) -> str:
        parts = ["<categories>"]
        for index in range(counts.categories):
            parts.append(
                f'<category id="category{index}">'
                f"<name>{rng.choice(_WORDS)} {index}</name>"
                f"{self._description(rng, deep=False)}"
                f"</category>")
        parts.append("</categories>")
        return "".join(parts)

    def _catgraph(self, rng: random.Random, counts: XMarkCounts) -> str:
        edges = []
        for _ in range(counts.categories):
            source = rng.randrange(counts.categories)
            target = rng.randrange(counts.categories)
            edges.append(f'<edge from="category{source}" to="category{target}"/>')
        return "<catgraph>" + "".join(edges) + "</catgraph>"

    def _date(self, rng: random.Random) -> str:
        return f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/{rng.randint(1998, 2001)}"

    def _people(self, rng: random.Random, counts: XMarkCounts) -> str:
        parts = ["<people>"]
        for index in range(counts.persons):
            name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
            email = f"<emailaddress>mailto:{name.replace(' ', '.')}@example.org</emailaddress>"
            phone = (f"<phone>+1 ({rng.randint(100, 999)}) {rng.randint(1000000, 9999999)}</phone>"
                     if rng.random() < 0.5 else "")
            address = ""
            if rng.random() < 0.6:
                address = (f"<address><street>{rng.randint(1, 99)} {rng.choice(_WORDS)} St</street>"
                           f"<city>{rng.choice(_CITIES)}</city>"
                           f"<country>{rng.choice(_COUNTRIES)}</country>"
                           f"<zipcode>{rng.randint(10000, 99999)}</zipcode></address>")
            homepage = (f"<homepage>http://www.example.org/~person{index}</homepage>"
                        if rng.random() < 0.5 else "")
            creditcard = (f"<creditcard>{rng.randint(1000, 9999)} {rng.randint(1000, 9999)} "
                          f"{rng.randint(1000, 9999)} {rng.randint(1000, 9999)}</creditcard>"
                          if rng.random() < 0.7 else "")
            profile = ""
            if rng.random() < 0.8:
                interests = "".join(
                    f'<interest category="category{rng.randrange(counts.categories)}"/>'
                    for _ in range(rng.randint(0, 4)))
                education = (f"<education>{rng.choice(_EDUCATION)}</education>"
                             if rng.random() < 0.5 else "")
                gender = (f"<gender>{rng.choice(('male', 'female'))}</gender>"
                          if rng.random() < 0.5 else "")
                age = (f"<age>{rng.randint(18, 80)}</age>" if rng.random() < 0.5 else "")
                income = round(rng.uniform(9000, 150000), 2)
                profile = (f'<profile income="{income}">{interests}{education}{gender}'
                           f"<business>{'Yes' if rng.random() < 0.2 else 'No'}</business>"
                           f"{age}</profile>")
            watches = ""
            if rng.random() < 0.4 and counts.open_auctions:
                watches = "<watches>" + "".join(
                    f'<watch open_auction="open_auction{rng.randrange(counts.open_auctions)}"/>'
                    for _ in range(rng.randint(1, 3))) + "</watches>"
            parts.append(
                f'<person id="person{index}">'
                f"<name>{name}</name>{email}{phone}{address}{homepage}{creditcard}"
                f"{profile}{watches}</person>")
        parts.append("</people>")
        return "".join(parts)

    def _open_auctions(self, rng: random.Random, counts: XMarkCounts) -> str:
        parts = ["<open_auctions>"]
        for index in range(counts.open_auctions):
            initial = round(rng.uniform(1, 300), 2)
            increases = [round(rng.uniform(1, 30), 2)
                         for _ in range(rng.randint(0, 5))]
            current = round(initial + sum(increases), 2)
            bidders = "".join(
                f"<bidder><date>{self._date(rng)}</date><time>{rng.randint(0, 23):02d}:"
                f"{rng.randint(0, 59):02d}:00</time>"
                f'<personref person="person{rng.randrange(counts.persons)}"/>'
                f"<increase>{increase}</increase></bidder>"
                for increase in increases)
            reserve = (f"<reserve>{round(initial * rng.uniform(1.1, 2.5), 2)}</reserve>"
                       if rng.random() < 0.6 else "")
            privacy = "<privacy>Yes</privacy>" if rng.random() < 0.3 else ""
            deep = rng.random() < 0.15
            parts.append(
                f'<open_auction id="open_auction{index}">'
                f"<initial>{initial}</initial>{reserve}{bidders}"
                f"<current>{current}</current>{privacy}"
                f'<itemref item="item{rng.randrange(counts.items)}"/>'
                f'<seller person="person{rng.randrange(counts.persons)}"/>'
                f'<annotation><author person="person{rng.randrange(counts.persons)}"/>'
                f"{self._description(rng, deep=deep)}"
                f"<happiness>{rng.randint(1, 10)}</happiness></annotation>"
                f"<quantity>{rng.randint(1, 5)}</quantity>"
                f"<type>Regular</type>"
                f"<interval><start>{self._date(rng)}</start><end>{self._date(rng)}</end></interval>"
                f"</open_auction>")
        parts.append("</open_auctions>")
        return "".join(parts)

    def _closed_auctions(self, rng: random.Random, counts: XMarkCounts) -> str:
        parts = ["<closed_auctions>"]
        for index in range(counts.closed_auctions):
            deep = rng.random() < 0.25
            parts.append(
                "<closed_auction>"
                f'<seller person="person{rng.randrange(counts.persons)}"/>'
                f'<buyer person="person{rng.randrange(counts.persons)}"/>'
                f'<itemref item="item{rng.randrange(counts.items)}"/>'
                f"<price>{round(rng.uniform(5, 400), 2)}</price>"
                f"<date>{self._date(rng)}</date>"
                f"<quantity>{rng.randint(1, 5)}</quantity>"
                f"<type>Regular</type>"
                f'<annotation><author person="person{rng.randrange(counts.persons)}"/>'
                f"{self._description(rng, deep=deep)}"
                f"<happiness>{rng.randint(1, 10)}</happiness></annotation>"
                "</closed_auction>")
        parts.append("</closed_auctions>")
        return "".join(parts)


def generate_document(scale: float = 0.001, seed: int = 42) -> str:
    """Generate an XMark-like document as XML text."""
    return XMarkGenerator(scale, seed).generate()


def load_xmark(engine, scale: float = 0.001, seed: int = 42,
               name: str = "auction.xml"):
    """Generate, shred and register an XMark document with an engine."""
    text = generate_document(scale, seed)
    return engine.load_document_text(text, name=name)
