"""Concurrency stress: the serving layer under mixed query/update traffic.

N threads mix queries with document loads/drops and update commits; the
assertions pin down the thread-safety contract:

* identical results single-threaded vs. 8-threaded on the XMark suite,
* no stale or torn reads after ``DocumentStore.version`` bumps — every
  observed value corresponds to a state that was actually committed,
* the shared prepared-plan cache and the cross-query materialized subplan
  cache never serve an artifact across a schema-version boundary,
* ``PlanCacheStats`` accounting stays exact under concurrency (every
  ``prepare()`` is exactly one hit or one miss), including while
  ``clear_plan_cache()`` races against threads holding ``PreparedQuery``
  objects.
"""

from __future__ import annotations

import threading

import pytest

from repro import EngineOptions, MonetXQuery, XMLUpdater
from repro.server import QueryServer
from repro.xmark import all_queries

from conftest import SMALL_XML


THREADS = 8

PERSON_NAME_QUERY = ('for $p in /site/people/person[@id = "person0"] '
                     'return $p/name/text()')


def run_threads(workers: list) -> list[BaseException]:
    """Start callables on threads, join them, collect their exceptions."""
    errors: list[BaseException] = []
    lock = threading.Lock()

    def wrap(worker):
        def run():
            try:
                worker()
            except BaseException as exc:   # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(exc)
        return run

    threads = [threading.Thread(target=wrap(worker)) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "worker thread deadlocked"
    return errors


# --------------------------------------------------------------------------- #
# identical results: single-threaded vs. 8 threads on the XMark suite
# --------------------------------------------------------------------------- #
class TestXMarkParallelEquivalence:
    def test_eight_threads_match_single_thread(self, xmark_text):
        reference = MonetXQuery()
        reference.load_document_text(xmark_text, name="auction.xml")
        expected = {number: reference.query(text).serialize()
                    for number, text in all_queries().items()}

        with QueryServer(threads=THREADS) as server:
            server.load_document_text(xmark_text, name="auction.xml")
            futures = []
            for _ in range(3):                     # repetitions hit the caches
                for number, text in all_queries().items():
                    futures.append((number, server.submit(text)))
            for number, future in futures:
                assert future.result().serialize() == expected[number], \
                    f"XMark Q{number} diverged under concurrency"
            stats = server.stats()
            assert stats.queries_served == 3 * len(expected)
            # repeated traffic must actually exercise both shared caches
            assert stats.plan_cache.hits > 0
            assert stats.subplan_cache.hits > 0


# --------------------------------------------------------------------------- #
# queries racing update commits: no stale, no torn reads
# --------------------------------------------------------------------------- #
class TestUpdatesUnderLoad:
    def test_no_stale_results_after_version_bumps(self):
        server = QueryServer(threads=THREADS)
        server.load_document_text(SMALL_XML, name="auction.xml")
        engine = server.engine

        commits = 12
        committed: dict[int, str] = {engine.store.version: "Alice"}
        committed_lock = threading.Lock()
        stop = threading.Event()

        def mutator():
            try:
                for index in range(commits):
                    new_name = f"alice-v{index}"
                    with server.update("auction.xml") as updater:
                        [target] = updater.select(
                            '/site/people/person[@id = "person0"]'
                            '/name/text()')
                        updater.replace_value(target, new_name)
                    with committed_lock:
                        committed[engine.store.version] = new_name
            finally:
                stop.set()

        observations: list[tuple[int, str, int]] = []
        observations_lock = threading.Lock()

        def reader():
            while not stop.is_set() or not observations:
                version_before = engine.store.version
                result = server.execute(PERSON_NAME_QUERY)
                version_after = engine.store.version
                assert len(result.items) == 1
                with observations_lock:
                    observations.append(
                        (version_before, result.strings()[0], version_after))

        errors = run_threads([mutator] + [reader] * (THREADS - 1))
        assert not errors, errors

        with committed_lock:
            valid_names = set(committed.values())
        for version_before, name, version_after in observations:
            # every observed value was committed at some point: no torn mix
            assert name in valid_names, f"torn/phantom value {name!r}"
            # a query bracketed by one stable version must see exactly the
            # state committed at that version: no stale cache serve
            if version_before == version_after:
                assert name == committed[version_before], (
                    f"stale read: saw {name!r} at version {version_before}, "
                    f"committed was {committed[version_before]!r}")

        # after all threads joined, the final state must be visible
        final = server.execute(PERSON_NAME_QUERY)
        assert final.strings() == [f"alice-v{commits - 1}"]
        server.close()

    def test_stats_snapshot_is_atomic_under_churn(self):
        # regression: stats() used to read the version and the document
        # list in separate store-lock acquisitions, so a stats call racing
        # a commit could pair a new version with an old document list
        server = QueryServer(threads=THREADS)
        server.load_document_text(SMALL_XML, name="stable.xml")
        committed = {server.engine.store.version: ["stable.xml"]}
        committed_lock = threading.Lock()
        stop = threading.Event()

        def record():
            with committed_lock:
                committed[server.engine.store.version] = \
                    sorted(server.engine.store.names())

        def mutator():
            try:
                for index in range(25):
                    name = f"extra-{index}.xml"
                    server.load_document_text("<extra/>", name,
                                              default_context=False)
                    record()
                    server.drop_document(name)
                    record()
            finally:
                stop.set()

        observed: list[tuple[int, list[str]]] = []
        observed_lock = threading.Lock()

        def watcher():
            while not stop.is_set() or not observed:
                stats = server.stats()
                with observed_lock:
                    observed.append((stats.store_version,
                                     sorted(stats.documents)))

        errors = run_threads([mutator] + [watcher] * (THREADS - 1))
        assert not errors, errors
        assert observed
        for version, documents in observed:
            assert version in committed, \
                f"stats reported never-committed version {version}"
            assert documents == committed[version], (
                f"torn stats: version {version} paired with {documents}, "
                f"committed state was {committed[version]}")
        server.close()

    def test_load_drop_churn_does_not_disturb_other_documents(self):
        server = QueryServer(threads=THREADS)
        server.load_document_text(SMALL_XML, name="stable.xml")
        expected = server.execute("count(//person)",
                                  context="stable.xml").items
        stop = threading.Event()

        def churn():
            try:
                for index in range(20):
                    name = f"extra-{index}.xml"
                    server.load_document_text(f"<extra n=\"{index}\"/>", name,
                                              default_context=False)
                    server.drop_document(name)
            finally:
                stop.set()

        def reader():
            while not stop.is_set():
                result = server.execute("count(//person)",
                                        context="stable.xml")
                assert result.items == expected

        errors = run_threads([churn] + [reader] * (THREADS - 1))
        assert not errors, errors
        assert "stable.xml" in server.engine.store
        assert server.engine.store.names() == ["stable.xml"]
        server.close()


# --------------------------------------------------------------------------- #
# version boundaries: neither shared cache may serve across them
# --------------------------------------------------------------------------- #
class TestVersionBoundaries:
    def test_plan_cache_never_serves_across_versions(self):
        server = QueryServer(threads=2)
        server.load_document_text(SMALL_XML, name="auction.xml")
        before = server.prepare(PERSON_NAME_QUERY)
        with server.update("auction.xml") as updater:
            [target] = updater.select(
                '/site/people/person[@id = "person0"]/name/text()')
            updater.replace_value(target, "Renamed")
        after = server.prepare(PERSON_NAME_QUERY)
        assert after is not before          # new version -> new cache slot
        assert server.execute(PERSON_NAME_QUERY).strings() == ["Renamed"]
        server.close()

    def test_subplan_cache_never_serves_across_versions(self):
        server = QueryServer(threads=2)
        server.load_document_text(SMALL_XML, name="auction.xml")
        engine = server.engine
        path_query = "/site/people/person"

        assert len(server.execute(path_query)) == 3
        version_before = engine.store.version
        cached_keys = server.subplan_cache.keys()
        assert cached_keys, "the absolute path must be materialized"
        assert all(key[1] == version_before for key in cached_keys)

        # structural update: the set of persons changes
        with server.update("auction.xml") as updater:
            [people] = updater.select("/site/people")
            updater.insert_last(
                people, '<person id="person9"><name>Zoe</name></person>')

        assert engine.store.version > version_before
        result = server.execute(path_query)
        assert len(result) == 4, "subplan cache served a stale materialization"
        # stale-version entries were reclaimed; live ones carry the new version
        assert all(key[1] == engine.store.version
                   for key in server.subplan_cache.keys())
        server.close()

    def test_user_function_predicates_are_never_cached_across_queries(self):
        # regression: the structural fingerprint covers only a call site,
        # not the function body — two queries declaring a same-named local
        # function with different bodies must not share a cache slot
        server = QueryServer(threads=2)
        server.load_document_text(
            "<a><b><c>1</c></b><b><c>2</c></b></a>", name="doc.xml")
        first = server.execute(
            'declare function local:f($x) { $x/c/text() = "1" };'
            ' /a/b[local:f(.)]/c/text()')
        second = server.execute(
            'declare function local:f($x) { $x/c/text() = "2" };'
            ' /a/b[local:f(.)]/c/text()')
        assert first.strings() == ["1"]
        assert second.strings() == ["2"], \
            "subplan cache served a result across different function bodies"
        server.close()

    def test_nested_writers_inside_an_update_do_not_deadlock(self):
        server = QueryServer(threads=2)
        server.load_document_text(SMALL_XML, name="auction.xml")
        with server.update("auction.xml") as updater:
            # a writer nested inside the update transaction must not
            # self-deadlock on the server's mutation lock
            server.load_document_text("<side/>", "side.xml",
                                      default_context=False)
            server.drop_document("side.xml")
            [target] = updater.select(
                '/site/people/person[@id = "person0"]/name/text()')
            updater.replace_value(target, "Nested")
        assert server.execute(PERSON_NAME_QUERY).strings() == ["Nested"]
        server.close()

    def test_subplan_cache_hits_within_a_version(self):
        server = QueryServer(threads=2)
        server.load_document_text(SMALL_XML, name="auction.xml")
        server.execute("count(/site/people/person)")
        hits_before = server.subplan_cache.stats.hits
        # a *different* query sharing the absolute path must hit the cache
        server.execute("for $p in /site/people/person return $p/name/text()")
        assert server.subplan_cache.stats.hits > hits_before
        server.close()


# --------------------------------------------------------------------------- #
# PlanCacheStats accounting under the shared cache
# --------------------------------------------------------------------------- #
class TestPlanCacheStatsConcurrent:
    QUERIES = [
        "count(//person)",
        "count(//item)",
        "count(//increase)",
        "/site/people/person/name/text()",
        "for $p in /site/people/person return $p/@id",
    ]

    def _shared_engine(self, plan_cache_size: int = 64) -> MonetXQuery:
        engine = MonetXQuery(plan_cache_size=plan_cache_size)
        engine.load_document_text(SMALL_XML, name="auction.xml")
        return engine

    def test_every_prepare_is_exactly_one_hit_or_miss(self):
        engine = self._shared_engine()
        rounds = 40

        def worker(offset: int):
            def run():
                for index in range(rounds):
                    query = self.QUERIES[(index + offset) % len(self.QUERIES)]
                    prepared = engine.prepare(query)
                    assert prepared.text == query
            return run

        errors = run_threads([worker(offset) for offset in range(THREADS)])
        assert not errors, errors
        stats = engine.plan_cache_stats
        assert stats.hits + stats.misses == THREADS * rounds
        # every distinct text misses at least once; racing threads may
        # compile the same text concurrently, so misses can exceed the
        # distinct-query count but never the call count
        assert len(self.QUERIES) <= stats.misses <= THREADS * rounds
        assert stats.evictions == 0

    def test_eviction_accounting_under_concurrency(self):
        engine = self._shared_engine(plan_cache_size=2)
        rounds = 30

        def worker(offset: int):
            def run():
                for index in range(rounds):
                    query = self.QUERIES[(index + offset) % len(self.QUERIES)]
                    engine.prepare(query)
            return run

        errors = run_threads([worker(offset) for offset in range(4)])
        assert not errors, errors
        stats = engine.plan_cache_stats
        assert stats.hits + stats.misses == 4 * rounds
        assert stats.evictions > 0
        assert len(engine._plan_cache) <= 2

    def test_clear_plan_cache_while_another_thread_holds_a_prepared_query(self):
        engine = self._shared_engine()
        query = PERSON_NAME_QUERY
        expected = engine.query(query).serialize()
        stop = threading.Event()

        def holder():
            prepared = engine.prepare(query)     # held across cache clears
            while not stop.is_set():
                assert prepared.run().serialize() == expected

        def clearer():
            try:
                for _ in range(50):
                    engine.clear_plan_cache()
                    fresh = engine.prepare(query)
                    assert fresh.run().serialize() == expected
            finally:
                stop.set()

        errors = run_threads([holder, holder, clearer])
        assert not errors, errors
        # cleared entries must re-register as misses, never phantom hits
        stats = engine.plan_cache_stats
        assert stats.misses >= 2
        assert stats.hits + stats.misses >= 50
